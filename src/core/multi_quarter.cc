#include "core/multi_quarter.h"

#include <optional>

#include "core/analysis_stages.h"
#include "core/checkpoint.h"
#include "faers/ascii_format.h"
#include "faers/dedup.h"
#include "mining/measures.h"
#include "util/run_context.h"
#include "util/thread_pool.h"

namespace maras::core {

maras::StatusOr<faers::PreprocessResult> MergeQuarters(
    const std::vector<const faers::PreprocessResult*>& quarters) {
  if (quarters.empty()) {
    return maras::Status::InvalidArgument("no quarters to merge");
  }
  faers::PreprocessResult merged;
  for (const faers::PreprocessResult* quarter : quarters) {
    // Old-id -> new-id mapping for this quarter's vocabulary.
    std::vector<mining::ItemId> remap(quarter->items.size());
    for (size_t old_id = 0; old_id < quarter->items.size(); ++old_id) {
      auto id = static_cast<mining::ItemId>(old_id);
      MARAS_ASSIGN_OR_RETURN(
          remap[old_id],
          merged.items.Intern(quarter->items.Name(id),
                              quarter->items.Domain(id)));
    }
    for (size_t t = 0; t < quarter->transactions.size(); ++t) {
      mining::Itemset transaction;
      transaction.reserve(quarter->transactions.transaction(
                                  static_cast<mining::TransactionId>(t))
                              .size());
      for (mining::ItemId old_id : quarter->transactions.transaction(
               static_cast<mining::TransactionId>(t))) {
        transaction.push_back(remap[old_id]);
      }
      merged.transactions.Add(std::move(transaction));
      merged.primary_ids.push_back(quarter->primary_ids[t]);
      merged.demographics.push_back(t < quarter->demographics.size()
                                        ? quarter->demographics[t]
                                        : faers::CaseDemographics{});
    }
    // Aggregate statistics.
    merged.stats.reports_in += quarter->stats.reports_in;
    merged.stats.reports_kept += quarter->stats.reports_kept;
    merged.stats.dropped_not_expedited +=
        quarter->stats.dropped_not_expedited;
    merged.stats.dropped_stale_version +=
        quarter->stats.dropped_stale_version;
    merged.stats.dropped_empty += quarter->stats.dropped_empty;
    merged.stats.drug_mentions += quarter->stats.drug_mentions;
    merged.stats.adr_mentions += quarter->stats.adr_mentions;
    merged.stats.fuzzy_corrections += quarter->stats.fuzzy_corrections;
    merged.stats.alias_resolutions += quarter->stats.alias_resolutions;
  }
  merged.stats.distinct_drugs =
      merged.items.CountInDomain(mining::ItemDomain::kDrug);
  merged.stats.distinct_adrs =
      merged.items.CountInDomain(mining::ItemDomain::kAdr);
  return merged;
}

std::vector<QuarterlySignalTrend> TrackSignal(
    const std::vector<const faers::PreprocessResult*>& quarters,
    const std::vector<std::string>& quarter_labels,
    const std::vector<std::string>& drug_names,
    const std::vector<std::string>& adr_names) {
  std::vector<QuarterlySignalTrend> trend;
  for (size_t q = 0; q < quarters.size(); ++q) {
    QuarterlySignalTrend row;
    row.label = q < quarter_labels.size() ? quarter_labels[q]
                                          : std::to_string(q + 1);
    const faers::PreprocessResult& quarter = *quarters[q];
    mining::Itemset drugs, adrs;
    bool resolvable = true;
    for (const std::string& name : drug_names) {
      auto id = quarter.items.Lookup(name);
      if (!id.ok()) {
        resolvable = false;
        break;
      }
      drugs.push_back(*id);
    }
    for (const std::string& name : adr_names) {
      if (!resolvable) break;
      auto id = quarter.items.Lookup(name);
      if (!id.ok()) {
        resolvable = false;
        break;
      }
      adrs.push_back(*id);
    }
    if (resolvable) {
      drugs = mining::MakeItemset(std::move(drugs));
      adrs = mining::MakeItemset(std::move(adrs));
      row.combination_reports = quarter.transactions.Support(drugs);
      row.reports =
          quarter.transactions.Support(mining::Union(drugs, adrs));
      row.confidence =
          mining::Confidence(row.reports, row.combination_reports);
    }
    trend.push_back(std::move(row));
  }
  return trend;
}

const char* TrendVerdictName(TrendVerdict verdict) {
  switch (verdict) {
    case TrendVerdict::kEmerging:
      return "emerging";
    case TrendVerdict::kStable:
      return "stable";
    case TrendVerdict::kFading:
      return "fading";
    case TrendVerdict::kInsufficient:
      return "insufficient";
  }
  return "?";
}

namespace {

// Merges the per-quarter PreprocessResults that survived ingestion. The
// callers guarantee at least one entry.
maras::StatusOr<faers::PreprocessResult> MergeLoaded(
    const std::vector<faers::PreprocessResult>& loaded) {
  std::vector<const faers::PreprocessResult*> pointers;
  pointers.reserve(loaded.size());
  for (const faers::PreprocessResult& quarter : loaded) {
    pointers.push_back(&quarter);
  }
  return MergeQuarters(pointers);
}

}  // namespace

maras::StatusOr<faers::PreprocessResult> MultiQuarterPipeline::ProcessQuarter(
    const faers::QuarterDataset& dataset, QuarterOutcome* outcome) const {
  if (options_.validate) {
    faers::ValidationReport validation =
        faers::ValidateDataset(dataset, options_.validation);
    MARAS_RETURN_IF_ERROR(faers::EnforceValidation(
        validation, options_.ingest, &outcome->ingest));
  }
  faers::Preprocessor preprocessor(options_.preprocess);
  if (options_.remove_duplicates) {
    faers::QuarterDataset deduped = faers::RemoveDuplicateCases(
        dataset, options_.ingest, &outcome->ingest);
    return preprocessor.Process(deduped, &outcome->ingest);
  }
  return preprocessor.Process(dataset, &outcome->ingest);
}

template <typename Quarter, typename LabelFn, typename LoadFn>
static maras::StatusOr<MultiQuarterRun> RunPipeline(
    const MultiQuarterOptions& options, const std::vector<Quarter>& quarters,
    LabelFn&& label_of, LoadFn&& load_one) {
  const bool strict =
      options.ingest.policy == faers::IngestPolicy::kStrict;
  const maras::RunContext ungoverned;
  const maras::RunContext& ctx =
      options.context != nullptr ? *options.context : ungoverned;
  // Phase 1 — fan out: each quarter is processed by one pool task into its
  // own (outcome, result) slot; nothing is shared between tasks. The run
  // context is polled before each quarter is handed out, so a governance
  // trip stops scheduling remaining quarters.
  const size_t n = quarters.size();
  std::vector<QuarterOutcome> outcomes(n);
  std::vector<std::optional<maras::StatusOr<faers::PreprocessResult>>>
      processed(n);
  maras::Status fan_out = maras::TryParallelFor(
      options.num_threads, n, ctx, [&](size_t i) -> maras::Status {
        outcomes[i].label = label_of(quarters[i]);
        processed[i].emplace(load_one(quarters[i], &outcomes[i]));
        return maras::Status::OK();
      });
  if (!fan_out.ok()) {
    return maras::WithContext(fan_out, "multi-quarter ingest");
  }
  // Phase 2 — reduce serially in input order, so accounting, warning order,
  // strict-mode error choice, and the merged corpus match the serial run.
  MultiQuarterRun run;
  std::vector<faers::PreprocessResult> loaded;
  for (size_t i = 0; i < n; ++i) {
    QuarterOutcome outcome = std::move(outcomes[i]);
    maras::StatusOr<faers::PreprocessResult>& result = *processed[i];
    if (result.ok()) {
      outcome.loaded = true;
      ++run.quarters_loaded;
      loaded.push_back(*std::move(result));
    } else {
      if (strict) {
        return maras::WithContext(result.status(),
                                  "quarter " + outcome.label);
      }
      outcome.error = result.status().ToString();
      run.ingest.warnings.push_back("skipping quarter " + outcome.label +
                                    ": " + outcome.error);
    }
    run.ingest.Merge(outcome.ingest);
    run.outcomes.push_back(std::move(outcome));
  }
  if (loaded.empty()) {
    return maras::Status::Corruption(
        "all " + std::to_string(quarters.size()) +
        " quarters failed ingestion");
  }
  MARAS_ASSIGN_OR_RETURN(run.merged, MergeLoaded(loaded));
  return run;
}

maras::StatusOr<MultiQuarterRun> MultiQuarterPipeline::RunFromDirs(
    const std::vector<QuarterSource>& sources) const {
  if (sources.empty()) {
    return maras::Status::InvalidArgument("no quarters to ingest");
  }
  return RunPipeline(
      options_, sources,
      [](const QuarterSource& source) { return source.Label(); },
      [this](const QuarterSource& source, QuarterOutcome* outcome)
          -> maras::StatusOr<faers::PreprocessResult> {
        MARAS_ASSIGN_OR_RETURN(
            faers::QuarterDataset dataset,
            faers::ReadAsciiQuarterFromDir(source.directory, source.year,
                                           source.quarter, options_.ingest,
                                           &outcome->ingest));
        return ProcessQuarter(dataset, outcome);
      });
}

maras::StatusOr<MultiQuarterRun> MultiQuarterPipeline::Run(
    const std::vector<faers::QuarterDataset>& quarters) const {
  if (quarters.empty()) {
    return maras::Status::InvalidArgument("no quarters to ingest");
  }
  return RunPipeline(
      options_, quarters,
      [](const faers::QuarterDataset& dataset) { return dataset.Label(); },
      [this](const faers::QuarterDataset& dataset, QuarterOutcome* outcome) {
        return ProcessQuarter(dataset, outcome);
      });
}

namespace {

// Crash-injection point: fires after `stage` (and its checkpoint write)
// completed. Returning false simulates a process kill at that boundary.
maras::Status FireStageHook(const MultiQuarterOptions& options,
                            const std::string& stage) {
  if (options.stage_hook && !options.stage_hook(stage)) {
    return maras::Status::Cancelled("injected crash at stage " + stage);
  }
  return maras::Status::OK();
}

// Attempts to replay `stage` from a checkpoint; decode(payload) must return
// true on success. NotFound is silent (nothing written yet); a corrupt
// snapshot adds a recompute note so a degraded resume is visible.
template <typename DecodeFn>
bool TryResumeStage(const MultiQuarterOptions& options,
                    const std::string& stage, DecodeFn&& decode,
                    std::vector<std::string>* notes) {
  if (options.checkpoint_dir.empty() || !options.resume) return false;
  maras::StatusOr<std::string> payload =
      ReadCheckpoint(options.checkpoint_dir, stage);
  if (payload.ok()) {
    maras::Status decoded = decode(*payload);
    if (decoded.ok()) return true;
    notes->push_back("checkpoint for stage '" + stage +
                     "' rejected: " + decoded.ToString() + "; recomputing");
    return false;
  }
  if (!payload.status().IsNotFound()) {
    notes->push_back("checkpoint for stage '" + stage +
                     "' rejected: " + payload.status().ToString() +
                     "; recomputing");
  }
  return false;
}

}  // namespace

maras::StatusOr<SurveillanceAnalysis> MultiQuarterPipeline::RunAnalyzed(
    const std::vector<faers::QuarterDataset>& quarters,
    const AnalyzerOptions& analyzer, RankingMethod method) const {
  if (quarters.empty()) {
    return maras::Status::InvalidArgument("no quarters to ingest");
  }
  const bool strict = options_.ingest.policy == faers::IngestPolicy::kStrict;
  const bool checkpointing = !options_.checkpoint_dir.empty();
  const maras::RunContext ungoverned;
  const maras::RunContext& ctx =
      options_.context != nullptr ? *options_.context : ungoverned;
  SurveillanceAnalysis out;

  // --- Stage 1: per-quarter ingest + preprocess, one snapshot each -------
  const size_t n = quarters.size();
  std::vector<QuarterCheckpoint> slots(n);
  std::vector<char> from_disk(n, 0);
  std::vector<maras::Status> failures(n);
  for (size_t i = 0; i < n; ++i) {
    const std::string label = quarters[i].Label();
    const bool resumed = TryResumeStage(
        options_, "quarter-" + label,
        [&](const std::string& payload) -> maras::Status {
          MARAS_ASSIGN_OR_RETURN(QuarterCheckpoint decoded,
                                 DecodeQuarterCheckpoint(payload));
          if (decoded.outcome.label != label) {
            return maras::Status::Corruption("snapshot is for quarter '" +
                                             decoded.outcome.label + "'");
          }
          slots[i] = std::move(decoded);
          return maras::Status::OK();
        },
        &out.notes);
    if (resumed) {
      from_disk[i] = 1;
      ++out.stages_resumed;
    }
  }
  maras::Status fan_out = maras::TryParallelFor(
      options_.num_threads, n, ctx, [&](size_t i) -> maras::Status {
        if (from_disk[i]) return maras::Status::OK();
        slots[i].outcome.label = quarters[i].Label();
        maras::StatusOr<faers::PreprocessResult> result =
            ProcessQuarter(quarters[i], &slots[i].outcome);
        if (result.ok()) {
          slots[i].outcome.loaded = true;
          slots[i].result = *std::move(result);
        } else {
          failures[i] = result.status();
          slots[i].outcome.error = result.status().ToString();
        }
        return maras::Status::OK();
      });
  if (!fan_out.ok()) {
    return maras::WithContext(fan_out, "multi-quarter ingest");
  }
  // Serial in-order reduce: checkpoint writes, crash hooks, accounting and
  // strict-mode error choice all follow input order, exactly like the
  // serial run.
  MultiQuarterRun run;
  for (size_t i = 0; i < n; ++i) {
    QuarterCheckpoint& quarter = slots[i];
    const std::string stage = "quarter-" + quarter.outcome.label;
    if (strict && !quarter.outcome.loaded) {
      if (!failures[i].ok()) {
        return maras::WithContext(failures[i],
                                  "quarter " + quarter.outcome.label);
      }
      return maras::WithContext(
          maras::Status::Corruption(quarter.outcome.error),
          "quarter " + quarter.outcome.label);
    }
    if (!from_disk[i]) {
      if (checkpointing) {
        MARAS_RETURN_IF_ERROR(WriteCheckpoint(
            options_.checkpoint_dir, stage, EncodeQuarterCheckpoint(quarter)));
      }
      MARAS_RETURN_IF_ERROR(FireStageHook(options_, stage));
    }
    if (quarter.outcome.loaded) {
      ++run.quarters_loaded;
    } else {
      run.ingest.warnings.push_back("skipping quarter " +
                                    quarter.outcome.label + ": " +
                                    quarter.outcome.error);
    }
    run.ingest.Merge(quarter.outcome.ingest);
    run.outcomes.push_back(quarter.outcome);
  }
  if (run.quarters_loaded == 0) {
    return maras::Status::Corruption("all " + std::to_string(n) +
                                     " quarters failed ingestion");
  }
  // The merge is cheap and purely derived from the per-quarter snapshots,
  // so it is recomputed rather than checkpointed.
  std::vector<const faers::PreprocessResult*> loaded;
  for (const QuarterCheckpoint& quarter : slots) {
    if (quarter.result.has_value()) loaded.push_back(&*quarter.result);
  }
  MARAS_ASSIGN_OR_RETURN(run.merged, MergeQuarters(loaded));
  const mining::ItemDictionary& items = run.merged.items;
  const mining::TransactionDatabase& db = run.merged.transactions;

  // --- Stage 2: closed-itemset mining ("closed") -------------------------
  MARAS_RETURN_IF_ERROR(ctx.Check());
  ClosedCheckpoint closed_stage;
  bool closed_resumed = TryResumeStage(
      options_, "closed",
      [&](const std::string& payload) -> maras::Status {
        MARAS_ASSIGN_OR_RETURN(closed_stage, DecodeClosedCheckpoint(payload));
        return maras::Status::OK();
      },
      &out.notes);
  if (closed_resumed) {
    ++out.stages_resumed;
  } else {
    mining::MiningOptions mining_options = analyzer.mining;
    mining_options.context = options_.context;
    MARAS_ASSIGN_OR_RETURN(
        GovernedMineResult mined,
        MineWithDegradation(db, mining_options, analyzer.degradation));
    MARAS_ASSIGN_OR_RETURN(
        closed_stage, BuildClosedStage(std::move(mined), items, analyzer,
                                       ctx));
    if (checkpointing) {
      MARAS_RETURN_IF_ERROR(WriteCheckpoint(
          options_.checkpoint_dir, "closed",
          EncodeClosedCheckpoint(closed_stage)));
    }
    MARAS_RETURN_IF_ERROR(FireStageHook(options_, "closed"));
  }

  // --- Stage 3: target rule generation ("rules") -------------------------
  MARAS_RETURN_IF_ERROR(ctx.Check());
  std::vector<DrugAdrRule> rules;
  bool rules_resumed = TryResumeStage(
      options_, "rules",
      [&](const std::string& payload) -> maras::Status {
        MARAS_ASSIGN_OR_RETURN(rules, DecodeRules(payload));
        return maras::Status::OK();
      },
      &out.notes);
  if (rules_resumed) {
    ++out.stages_resumed;
  } else {
    MARAS_ASSIGN_OR_RETURN(
        rules,
        BuildRulesStage(closed_stage.closed, items, db, analyzer, ctx));
    if (checkpointing) {
      MARAS_RETURN_IF_ERROR(WriteCheckpoint(options_.checkpoint_dir, "rules",
                                            EncodeRules(rules)));
    }
    MARAS_RETURN_IF_ERROR(FireStageHook(options_, "rules"));
  }

  // --- Stage 4: MCAC construction + ranking ("ranked") -------------------
  MARAS_RETURN_IF_ERROR(ctx.Check());
  std::vector<RankedMcac> ranked;
  bool ranked_resumed = TryResumeStage(
      options_, "ranked",
      [&](const std::string& payload) -> maras::Status {
        MARAS_ASSIGN_OR_RETURN(ranked, DecodeRankedMcacs(payload));
        return maras::Status::OK();
      },
      &out.notes);
  if (ranked_resumed) {
    ++out.stages_resumed;
  } else {
    // The lattice is rebuilt (never checkpointed): it is a pure function of
    // the closed family, cheaper to reconstruct than to persist, and a
    // resumed "ranked" stage skips it entirely.
    mining::ConceptLattice lattice_storage;
    const mining::ConceptLattice* lattice = nullptr;
    if (LatticeMcacEligible(analyzer)) {
      MARAS_ASSIGN_OR_RETURN(
          lattice_storage,
          BuildLatticeStage(closed_stage.closed, analyzer, ctx));
      lattice = &lattice_storage;
    }
    MARAS_ASSIGN_OR_RETURN(
        ranked,
        BuildRankedStage(rules, items, db, method, analyzer, ctx, lattice));
    if (checkpointing) {
      MARAS_RETURN_IF_ERROR(WriteCheckpoint(options_.checkpoint_dir, "ranked",
                                            EncodeRankedMcacs(ranked)));
    }
    MARAS_RETURN_IF_ERROR(FireStageHook(options_, "ranked"));
  }

  out.run = std::move(run);
  out.closed = std::move(closed_stage.closed);
  out.rules = std::move(rules);
  out.ranked = std::move(ranked);
  out.stats = closed_stage.stats;
  out.stats.mcac_count = out.ranked.size();
  out.min_support_used = static_cast<size_t>(closed_stage.min_support_used);
  out.truncated = closed_stage.truncated;
  out.notes.insert(out.notes.end(), closed_stage.notes.begin(),
                   closed_stage.notes.end());
  return out;
}

TrendVerdict ClassifyTrend(const std::vector<QuarterlySignalTrend>& trend,
                           double margin) {
  const QuarterlySignalTrend* first = nullptr;
  const QuarterlySignalTrend* last = nullptr;
  for (const auto& row : trend) {
    if (row.combination_reports == 0) continue;
    if (first == nullptr) first = &row;
    last = &row;
  }
  if (first == nullptr || first == last) {
    return TrendVerdict::kInsufficient;
  }
  double delta = last->confidence - first->confidence;
  if (delta > margin) return TrendVerdict::kEmerging;
  if (delta < -margin) return TrendVerdict::kFading;
  return TrendVerdict::kStable;
}

}  // namespace maras::core
