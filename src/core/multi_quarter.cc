#include "core/multi_quarter.h"

#include <optional>

#include "faers/ascii_format.h"
#include "faers/dedup.h"
#include "mining/measures.h"
#include "util/thread_pool.h"

namespace maras::core {

maras::StatusOr<faers::PreprocessResult> MergeQuarters(
    const std::vector<const faers::PreprocessResult*>& quarters) {
  if (quarters.empty()) {
    return maras::Status::InvalidArgument("no quarters to merge");
  }
  faers::PreprocessResult merged;
  for (const faers::PreprocessResult* quarter : quarters) {
    // Old-id -> new-id mapping for this quarter's vocabulary.
    std::vector<mining::ItemId> remap(quarter->items.size());
    for (size_t old_id = 0; old_id < quarter->items.size(); ++old_id) {
      auto id = static_cast<mining::ItemId>(old_id);
      MARAS_ASSIGN_OR_RETURN(
          remap[old_id],
          merged.items.Intern(quarter->items.Name(id),
                              quarter->items.Domain(id)));
    }
    for (size_t t = 0; t < quarter->transactions.size(); ++t) {
      mining::Itemset transaction;
      transaction.reserve(quarter->transactions.transaction(
                                  static_cast<mining::TransactionId>(t))
                              .size());
      for (mining::ItemId old_id : quarter->transactions.transaction(
               static_cast<mining::TransactionId>(t))) {
        transaction.push_back(remap[old_id]);
      }
      merged.transactions.Add(std::move(transaction));
      merged.primary_ids.push_back(quarter->primary_ids[t]);
      merged.demographics.push_back(t < quarter->demographics.size()
                                        ? quarter->demographics[t]
                                        : faers::CaseDemographics{});
    }
    // Aggregate statistics.
    merged.stats.reports_in += quarter->stats.reports_in;
    merged.stats.reports_kept += quarter->stats.reports_kept;
    merged.stats.dropped_not_expedited +=
        quarter->stats.dropped_not_expedited;
    merged.stats.dropped_stale_version +=
        quarter->stats.dropped_stale_version;
    merged.stats.dropped_empty += quarter->stats.dropped_empty;
    merged.stats.drug_mentions += quarter->stats.drug_mentions;
    merged.stats.adr_mentions += quarter->stats.adr_mentions;
    merged.stats.fuzzy_corrections += quarter->stats.fuzzy_corrections;
    merged.stats.alias_resolutions += quarter->stats.alias_resolutions;
  }
  merged.stats.distinct_drugs =
      merged.items.CountInDomain(mining::ItemDomain::kDrug);
  merged.stats.distinct_adrs =
      merged.items.CountInDomain(mining::ItemDomain::kAdr);
  return merged;
}

std::vector<QuarterlySignalTrend> TrackSignal(
    const std::vector<const faers::PreprocessResult*>& quarters,
    const std::vector<std::string>& quarter_labels,
    const std::vector<std::string>& drug_names,
    const std::vector<std::string>& adr_names) {
  std::vector<QuarterlySignalTrend> trend;
  for (size_t q = 0; q < quarters.size(); ++q) {
    QuarterlySignalTrend row;
    row.label = q < quarter_labels.size() ? quarter_labels[q]
                                          : std::to_string(q + 1);
    const faers::PreprocessResult& quarter = *quarters[q];
    mining::Itemset drugs, adrs;
    bool resolvable = true;
    for (const std::string& name : drug_names) {
      auto id = quarter.items.Lookup(name);
      if (!id.ok()) {
        resolvable = false;
        break;
      }
      drugs.push_back(*id);
    }
    for (const std::string& name : adr_names) {
      if (!resolvable) break;
      auto id = quarter.items.Lookup(name);
      if (!id.ok()) {
        resolvable = false;
        break;
      }
      adrs.push_back(*id);
    }
    if (resolvable) {
      drugs = mining::MakeItemset(std::move(drugs));
      adrs = mining::MakeItemset(std::move(adrs));
      row.combination_reports = quarter.transactions.Support(drugs);
      row.reports =
          quarter.transactions.Support(mining::Union(drugs, adrs));
      row.confidence =
          mining::Confidence(row.reports, row.combination_reports);
    }
    trend.push_back(std::move(row));
  }
  return trend;
}

const char* TrendVerdictName(TrendVerdict verdict) {
  switch (verdict) {
    case TrendVerdict::kEmerging:
      return "emerging";
    case TrendVerdict::kStable:
      return "stable";
    case TrendVerdict::kFading:
      return "fading";
    case TrendVerdict::kInsufficient:
      return "insufficient";
  }
  return "?";
}

namespace {

// Merges the per-quarter PreprocessResults that survived ingestion. The
// callers guarantee at least one entry.
maras::StatusOr<faers::PreprocessResult> MergeLoaded(
    const std::vector<faers::PreprocessResult>& loaded) {
  std::vector<const faers::PreprocessResult*> pointers;
  pointers.reserve(loaded.size());
  for (const faers::PreprocessResult& quarter : loaded) {
    pointers.push_back(&quarter);
  }
  return MergeQuarters(pointers);
}

}  // namespace

maras::StatusOr<faers::PreprocessResult> MultiQuarterPipeline::ProcessQuarter(
    const faers::QuarterDataset& dataset, QuarterOutcome* outcome) const {
  if (options_.validate) {
    faers::ValidationReport validation =
        faers::ValidateDataset(dataset, options_.validation);
    MARAS_RETURN_IF_ERROR(faers::EnforceValidation(
        validation, options_.ingest, &outcome->ingest));
  }
  faers::Preprocessor preprocessor(options_.preprocess);
  if (options_.remove_duplicates) {
    faers::QuarterDataset deduped = faers::RemoveDuplicateCases(
        dataset, options_.ingest, &outcome->ingest);
    return preprocessor.Process(deduped, &outcome->ingest);
  }
  return preprocessor.Process(dataset, &outcome->ingest);
}

template <typename Quarter, typename LabelFn, typename LoadFn>
static maras::StatusOr<MultiQuarterRun> RunPipeline(
    const MultiQuarterOptions& options, const std::vector<Quarter>& quarters,
    LabelFn&& label_of, LoadFn&& load_one) {
  const bool strict =
      options.ingest.policy == faers::IngestPolicy::kStrict;
  // Phase 1 — fan out: each quarter is processed by one pool task into its
  // own (outcome, result) slot; nothing is shared between tasks.
  const size_t n = quarters.size();
  std::vector<QuarterOutcome> outcomes(n);
  std::vector<std::optional<maras::StatusOr<faers::PreprocessResult>>>
      processed(n);
  maras::ParallelFor(options.num_threads, n, [&](size_t i) {
    outcomes[i].label = label_of(quarters[i]);
    processed[i].emplace(load_one(quarters[i], &outcomes[i]));
  });
  // Phase 2 — reduce serially in input order, so accounting, warning order,
  // strict-mode error choice, and the merged corpus match the serial run.
  MultiQuarterRun run;
  std::vector<faers::PreprocessResult> loaded;
  for (size_t i = 0; i < n; ++i) {
    QuarterOutcome outcome = std::move(outcomes[i]);
    maras::StatusOr<faers::PreprocessResult>& result = *processed[i];
    if (result.ok()) {
      outcome.loaded = true;
      ++run.quarters_loaded;
      loaded.push_back(*std::move(result));
    } else {
      if (strict) {
        return maras::WithContext(result.status(),
                                  "quarter " + outcome.label);
      }
      outcome.error = result.status().ToString();
      run.ingest.warnings.push_back("skipping quarter " + outcome.label +
                                    ": " + outcome.error);
    }
    run.ingest.Merge(outcome.ingest);
    run.outcomes.push_back(std::move(outcome));
  }
  if (loaded.empty()) {
    return maras::Status::Corruption(
        "all " + std::to_string(quarters.size()) +
        " quarters failed ingestion");
  }
  MARAS_ASSIGN_OR_RETURN(run.merged, MergeLoaded(loaded));
  return run;
}

maras::StatusOr<MultiQuarterRun> MultiQuarterPipeline::RunFromDirs(
    const std::vector<QuarterSource>& sources) const {
  if (sources.empty()) {
    return maras::Status::InvalidArgument("no quarters to ingest");
  }
  return RunPipeline(
      options_, sources,
      [](const QuarterSource& source) { return source.Label(); },
      [this](const QuarterSource& source, QuarterOutcome* outcome)
          -> maras::StatusOr<faers::PreprocessResult> {
        MARAS_ASSIGN_OR_RETURN(
            faers::QuarterDataset dataset,
            faers::ReadAsciiQuarterFromDir(source.directory, source.year,
                                           source.quarter, options_.ingest,
                                           &outcome->ingest));
        return ProcessQuarter(dataset, outcome);
      });
}

maras::StatusOr<MultiQuarterRun> MultiQuarterPipeline::Run(
    const std::vector<faers::QuarterDataset>& quarters) const {
  if (quarters.empty()) {
    return maras::Status::InvalidArgument("no quarters to ingest");
  }
  return RunPipeline(
      options_, quarters,
      [](const faers::QuarterDataset& dataset) { return dataset.Label(); },
      [this](const faers::QuarterDataset& dataset, QuarterOutcome* outcome) {
        return ProcessQuarter(dataset, outcome);
      });
}

TrendVerdict ClassifyTrend(const std::vector<QuarterlySignalTrend>& trend,
                           double margin) {
  const QuarterlySignalTrend* first = nullptr;
  const QuarterlySignalTrend* last = nullptr;
  for (const auto& row : trend) {
    if (row.combination_reports == 0) continue;
    if (first == nullptr) first = &row;
    last = &row;
  }
  if (first == nullptr || first == last) {
    return TrendVerdict::kInsufficient;
  }
  double delta = last->confidence - first->confidence;
  if (delta > margin) return TrendVerdict::kEmerging;
  if (delta < -margin) return TrendVerdict::kFading;
  return TrendVerdict::kStable;
}

}  // namespace maras::core
