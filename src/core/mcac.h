#ifndef MARAS_CORE_MCAC_H_
#define MARAS_CORE_MCAC_H_

#include <cstdint>
#include <vector>

#include "core/drug_adr_rule.h"
#include "mining/concept_lattice.h"
#include "mining/item_dictionary.h"
#include "mining/transaction_db.h"
#include "util/statusor.h"

namespace maras::core {

// Largest antecedent the context enumeration accepts: 2^20 − 2 subsets is
// already ~10^6 rules per cluster, far past anything the paper's 2-4 drug
// combinations produce. Larger targets get a structured InvalidArgument
// (never a silent cap or a crash).
inline constexpr size_t kMaxMcacAntecedentDrugs = 20;

// Multi-level Contextual Association Cluster (Section 3.5): a target
// drug-ADR rule R ≡ A ⇒ B together with its complete context — every rule
// X ⇒ B with X a proper non-empty subset of A (Def 3.5.1/3.5.2) — grouped
// by antecedent cardinality, exactly like the paper's Table 3.1.
struct Mcac {
  DrugAdrRule target;
  // levels[k-1] holds the contextual rules with k drugs, for
  // k = 1 .. |target.drugs| − 1, each level sorted by descending
  // confidence (the glyph's within-level order).
  std::vector<std::vector<DrugAdrRule>> levels;

  // Number of contextual rules actually present across all levels.
  size_t ContextSize() const;

  // The 2^n − 2 context size an n-drug antecedent implies, computed in
  // uint64_t with an explicit overflow guard: n < 2 and n >= 64 both return
  // InvalidArgument instead of wrapping or capping.
  static maras::StatusOr<uint64_t> ExpectedContextSize(size_t drug_count);
};

// Builds MCACs from target rules with exact context supports. The default
// construction counts every subset from the transaction database
// (contextual subsets routinely fall below the mining support threshold,
// so their supports cannot come from the mined result). When a concept
// lattice and a shared support cache are supplied, subset supports resolve
// as downward lattice walks memoized across targets instead — byte-identical
// output (the lattice differential oracle proves it), sublinear work.
class McacBuilder {
 public:
  McacBuilder(const mining::ItemDictionary* items,
              const mining::TransactionDatabase* db)
      : items_(items), db_(db) {}

  // Lattice-backed variant. `lattice` must satisfy the descent exactness
  // precondition (see concept_lattice.h) for every target passed to Build;
  // targets absent from the lattice fall back to cached bitmap-kernel
  // counting per subset. `cache` is shared across builders and threads.
  McacBuilder(const mining::ItemDictionary* items,
              const mining::TransactionDatabase* db,
              const mining::ConceptLattice* lattice,
              mining::SubsetSupportCache* cache)
      : items_(items), db_(db), lattice_(lattice), cache_(cache) {}

  // The target must have >= 2 drugs and <= kMaxMcacAntecedentDrugs.
  maras::StatusOr<Mcac> Build(const DrugAdrRule& target) const;

 private:
  const mining::ItemDictionary* items_;
  const mining::TransactionDatabase* db_;
  const mining::ConceptLattice* lattice_ = nullptr;
  mining::SubsetSupportCache* cache_ = nullptr;
};

}  // namespace maras::core

#endif  // MARAS_CORE_MCAC_H_
