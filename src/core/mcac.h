#ifndef MARAS_CORE_MCAC_H_
#define MARAS_CORE_MCAC_H_

#include <vector>

#include "core/drug_adr_rule.h"
#include "mining/item_dictionary.h"
#include "mining/transaction_db.h"
#include "util/statusor.h"

namespace maras::core {

// Multi-level Contextual Association Cluster (Section 3.5): a target
// drug-ADR rule R ≡ A ⇒ B together with its complete context — every rule
// X ⇒ B with X a proper non-empty subset of A (Def 3.5.1/3.5.2) — grouped
// by antecedent cardinality, exactly like the paper's Table 3.1.
struct Mcac {
  DrugAdrRule target;
  // levels[k-1] holds the contextual rules with k drugs, for
  // k = 1 .. |target.drugs| − 1, each level sorted by descending
  // confidence (the glyph's within-level order).
  std::vector<std::vector<DrugAdrRule>> levels;

  // Number of contextual rules across all levels: 2^n − 2.
  size_t ContextSize() const;
};

// Builds MCACs from target rules with exact context supports counted from
// the transaction database (contextual subsets routinely fall below the
// mining support threshold, so their supports cannot come from the mined
// result).
class McacBuilder {
 public:
  McacBuilder(const mining::ItemDictionary* items,
              const mining::TransactionDatabase* db)
      : items_(items), db_(db) {}

  // The target must have >= 2 drugs and <= 20 (subset enumeration bound).
  maras::StatusOr<Mcac> Build(const DrugAdrRule& target) const;

 private:
  const mining::ItemDictionary* items_;
  const mining::TransactionDatabase* db_;
};

}  // namespace maras::core

#endif  // MARAS_CORE_MCAC_H_
