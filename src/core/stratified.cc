#include "core/stratified.h"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.h"

namespace maras::core {

AgeBand AgeBandOf(double age_years) {
  if (age_years < 0) return AgeBand::kUnknown;
  if (age_years < 18) return AgeBand::kChild;
  if (age_years < 65) return AgeBand::kAdult;
  return AgeBand::kElderly;
}

const char* AgeBandName(AgeBand band) {
  switch (band) {
    case AgeBand::kUnknown:
      return "unknown-age";
    case AgeBand::kChild:
      return "<18";
    case AgeBand::kAdult:
      return "18-64";
    case AgeBand::kElderly:
      return "65+";
  }
  return "?";
}

std::string StratumTable::Label() const {
  return faers::SexCode(sex) + "/" + AgeBandName(age_band);
}

size_t StratifiedAnalyzer::StratumIndex(faers::Sex sex, AgeBand band) {
  return static_cast<size_t>(sex) * 4 + static_cast<size_t>(band);
}

StratifiedAnalyzer::StratifiedAnalyzer(
    const mining::TransactionDatabase* db,
    const std::vector<faers::CaseDemographics>* demographics)
    : db_(db), demographics_(demographics), stratum_tids_(kStrata) {
  for (size_t t = 0; t < db_->size(); ++t) {
    faers::CaseDemographics demo = t < demographics_->size()
                                       ? (*demographics_)[t]
                                       : faers::CaseDemographics{};
    stratum_tids_[StratumIndex(demo.sex, AgeBandOf(demo.age))].push_back(
        static_cast<mining::TransactionId>(t));
  }
  stratum_bitmaps_.reserve(kStrata);
  for (const std::vector<mining::TransactionId>& tids : stratum_tids_) {
    stratum_bitmaps_.push_back(mining::TidBitmap::FromTids(tids, db_->size()));
  }
}

namespace {

// |sorted ∩ sorted| without materializing.
size_t IntersectionSize(const std::vector<mining::TransactionId>& a,
                        const std::vector<mining::TransactionId>& b) {
  size_t count = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

std::vector<StratumTable> StratifiedAnalyzer::Tables(
    const DrugAdrRule& rule) const {
  // The rule's report sets, encoded once as bitmaps; each stratum's cells
  // then cost two AND+popcounts and one fused AND3 — the joint cell never
  // materializes a "with both" list.
  const size_t universe = db_->size();
  const mining::TidBitmap drugs_bm = mining::TidBitmap::FromTids(
      db_->ContainingTransactions(rule.drugs), universe);
  const mining::TidBitmap adrs_bm = mining::TidBitmap::FromTids(
      db_->ContainingTransactions(rule.adrs), universe);

  std::vector<StratumTable> tables;
  for (int sex = 0; sex < 3; ++sex) {
    for (int band = 0; band < 4; ++band) {
      const size_t idx = StratumIndex(static_cast<faers::Sex>(sex),
                                      static_cast<AgeBand>(band));
      const size_t n = stratum_tids_[idx].size();
      if (n == 0) continue;
      const mining::TidBitmap& stratum_bm = stratum_bitmaps_[idx];
      StratumTable stratum;
      stratum.sex = static_cast<faers::Sex>(sex);
      stratum.age_band = static_cast<AgeBand>(band);
      const size_t drugs_here = mining::AndPopcount(stratum_bm, drugs_bm);
      const size_t adrs_here = mining::AndPopcount(stratum_bm, adrs_bm);
      stratum.table.a = mining::And3Popcount(stratum_bm, drugs_bm, adrs_bm);
      stratum.table.b = drugs_here - stratum.table.a;
      stratum.table.c = adrs_here - stratum.table.a;
      stratum.table.d = n - drugs_here - stratum.table.c;
      tables.push_back(std::move(stratum));
    }
  }
  return tables;
}

std::vector<StratumTable> StratifiedAnalyzer::TablesScalar(
    const DrugAdrRule& rule) const {
  // Global tid lists computed once, intersected with each stratum.
  std::vector<mining::TransactionId> with_drugs =
      db_->ContainingTransactions(rule.drugs);
  std::vector<mining::TransactionId> with_adrs =
      db_->ContainingTransactions(rule.adrs);
  std::vector<mining::TransactionId> with_both =
      db_->ContainingTransactions(mining::Union(rule.drugs, rule.adrs));

  std::vector<StratumTable> tables;
  for (int sex = 0; sex < 3; ++sex) {
    for (int band = 0; band < 4; ++band) {
      const auto& tids = stratum_tids_[StratumIndex(
          static_cast<faers::Sex>(sex), static_cast<AgeBand>(band))];
      if (tids.empty()) continue;
      StratumTable stratum;
      stratum.sex = static_cast<faers::Sex>(sex);
      stratum.age_band = static_cast<AgeBand>(band);
      const size_t n = tids.size();
      const size_t drugs_here = IntersectionSize(tids, with_drugs);
      const size_t adrs_here = IntersectionSize(tids, with_adrs);
      stratum.table.a = IntersectionSize(tids, with_both);
      stratum.table.b = drugs_here - stratum.table.a;
      stratum.table.c = adrs_here - stratum.table.a;
      stratum.table.d = n - drugs_here - stratum.table.c;
      tables.push_back(std::move(stratum));
    }
  }
  return tables;
}

double StratifiedAnalyzer::CrudeRor(const DrugAdrRule& rule) const {
  return Ror(MakeContingencyTable(*db_, rule.drugs, rule.adrs));
}

double StratifiedAnalyzer::MantelHaenszelRor(const DrugAdrRule& rule) const {
  double numerator = 0.0;
  double denominator = 0.0;
  for (const StratumTable& stratum : Tables(rule)) {
    const double n = static_cast<double>(stratum.table.n());
    if (n == 0.0) continue;
    numerator += static_cast<double>(stratum.table.a) *
                 static_cast<double>(stratum.table.d) / n;
    denominator += static_cast<double>(stratum.table.b) *
                   static_cast<double>(stratum.table.c) / n;
  }
  if (denominator == 0.0) {
    return numerator == 0.0 ? 0.0 : kDisproportionalityCap;
  }
  return std::min(numerator / denominator, kDisproportionalityCap);
}

std::vector<double> StratifiedAnalyzer::MantelHaenszelRors(
    const std::vector<DrugAdrRule>& rules, size_t num_threads) const {
  std::vector<double> rors(rules.size());
  maras::ParallelFor(num_threads, rules.size(),
                     [&](size_t i) { rors[i] = MantelHaenszelRor(rules[i]); });
  return rors;
}

std::vector<bool> StratifiedAnalyzer::Confounded(
    const std::vector<DrugAdrRule>& rules, size_t num_threads,
    double threshold) const {
  // std::vector<bool> is bit-packed, so parallel writes into it would race;
  // collect into bytes and convert.
  std::vector<char> flags(rules.size());
  maras::ParallelFor(num_threads, rules.size(), [&](size_t i) {
    flags[i] = IsConfounded(rules[i], threshold) ? 1 : 0;
  });
  return std::vector<bool>(flags.begin(), flags.end());
}

bool StratifiedAnalyzer::IsConfounded(const DrugAdrRule& rule,
                                      double threshold) const {
  double crude = CrudeRor(rule);
  double pooled = MantelHaenszelRor(rule);
  if (crude <= 0.0 || pooled <= 0.0) return false;
  if (crude >= kDisproportionalityCap || pooled >= kDisproportionalityCap) {
    return false;  // degenerate tables carry no confounding evidence
  }
  double log_gap = std::abs(std::log(crude) - std::log(pooled));
  return log_gap > std::log(threshold);
}

}  // namespace maras::core
