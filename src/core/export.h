#ifndef MARAS_CORE_EXPORT_H_
#define MARAS_CORE_EXPORT_H_

#include <string>
#include <vector>

#include "core/analyzer.h"
#include "core/knowledge_base.h"
#include "core/ranking.h"
#include "util/json.h"

namespace maras::core {

// JSON export of analysis results — the hand-off format between the mining
// backend and the MARAS visual front end (or any downstream tool). The
// schema is stable and deterministic (sorted object keys, rank order
// preserved in arrays):
//
// {
//   "stats": {"total_rules": n, "filtered_rules": n, "mcac_count": n, ...},
//   "clusters": [{
//     "rank": 1,
//     "score": 0.52,
//     "target": {"drugs": [...], "adrs": [...], "support": n,
//                "confidence": x, "lift": x},
//     "severity": "severe",
//     "novelty": "novel combination",
//     "context": [{"drugs": [...], "support": n, "confidence": x,
//                  "lift": x}, ...]   // level-major order
//   }, ...]
// }

struct ExportOptions {
  // Cap on exported clusters; 0 exports everything.
  size_t max_clusters = 0;
  // Annotate clusters with severity / knowledge-base novelty.
  bool include_severity = true;
  bool include_novelty = true;
  // Include every contextual rule (can be large: 2^n − 2 per cluster).
  bool include_context = true;
};

// Builds the JSON document for a ranked cluster list.
json::Value ExportRankedMcacs(const std::vector<RankedMcac>& ranked,
                              const mining::ItemDictionary& items,
                              const RuleSpaceStats& stats,
                              const KnowledgeBase& knowledge_base,
                              const ExportOptions& options = {});

// One-call convenience: rank `analysis` with `method` and serialize.
std::string ExportAnalysisToJson(const AnalysisResult& analysis,
                                 const mining::ItemDictionary& items,
                                 RankingMethod method,
                                 const ExclusivenessOptions& scoring,
                                 const ExportOptions& options = {});

}  // namespace maras::core

#endif  // MARAS_CORE_EXPORT_H_
