#include "core/ranking.h"

#include <algorithm>

namespace maras::core {

const char* RankingMethodName(RankingMethod method) {
  switch (method) {
    case RankingMethod::kConfidence:
      return "confidence";
    case RankingMethod::kLift:
      return "lift";
    case RankingMethod::kExclusivenessConfidence:
      return "exclusiveness+confidence";
    case RankingMethod::kExclusivenessLift:
      return "exclusiveness+lift";
    case RankingMethod::kImprovement:
      return "improvement";
  }
  return "?";
}

double ScoreMcac(const Mcac& mcac, RankingMethod method,
                 const ExclusivenessOptions& options) {
  switch (method) {
    case RankingMethod::kConfidence:
      return mcac.target.confidence;
    case RankingMethod::kLift:
      return mcac.target.lift;
    case RankingMethod::kExclusivenessConfidence: {
      ExclusivenessOptions opts = options;
      opts.measure = RuleMeasure::kConfidence;
      return Exclusiveness(mcac, opts);
    }
    case RankingMethod::kExclusivenessLift: {
      ExclusivenessOptions opts = options;
      opts.measure = RuleMeasure::kLift;
      return Exclusiveness(mcac, opts);
    }
    case RankingMethod::kImprovement:
      return Improvement(mcac);
  }
  return 0.0;
}

std::vector<RankedMcac> RankMcacs(const std::vector<Mcac>& mcacs,
                                  RankingMethod method,
                                  const ExclusivenessOptions& options) {
  std::vector<RankedMcac> ranked;
  ranked.reserve(mcacs.size());
  for (const Mcac& mcac : mcacs) {
    ranked.push_back(RankedMcac{mcac, ScoreMcac(mcac, method, options)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedMcac& a, const RankedMcac& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.mcac.target.support != b.mcac.target.support) {
                return a.mcac.target.support > b.mcac.target.support;
              }
              if (a.mcac.target.drugs != b.mcac.target.drugs) {
                return a.mcac.target.drugs < b.mcac.target.drugs;
              }
              return a.mcac.target.adrs < b.mcac.target.adrs;
            });
  return ranked;
}

}  // namespace maras::core
