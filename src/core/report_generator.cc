#include "core/report_generator.h"

#include "core/disproportionality.h"
#include "util/string_util.h"

namespace maras::core {

namespace {

std::string Ratio(double v) {
  return v >= kDisproportionalityCap ? "inf" : FormatDouble(v, 1);
}

}  // namespace

maras::StatusOr<std::string> GenerateMarkdownReport(
    const ReportInputs& inputs, const ReportOptions& options) {
  if (inputs.current == nullptr || inputs.analysis == nullptr ||
      inputs.ranked == nullptr || inputs.knowledge_base == nullptr) {
    return maras::Status::InvalidArgument(
        "report inputs incomplete (current/analysis/ranked/knowledge_base)");
  }
  const faers::PreprocessResult& current = *inputs.current;
  const AnalysisResult& analysis = *inputs.analysis;
  const std::vector<RankedMcac>& ranked = *inputs.ranked;
  const KnowledgeBase& kb = *inputs.knowledge_base;

  std::string md;
  md += "# " + inputs.title + "\n\n";
  md += "Reports analyzed: " +
        FormatWithCommas(
            static_cast<long long>(current.transactions.size())) +
        " (of " +
        FormatWithCommas(static_cast<long long>(current.stats.reports_in)) +
        " submitted; " + std::to_string(current.stats.fuzzy_corrections) +
        " drug-name corrections, " +
        std::to_string(current.stats.alias_resolutions) +
        " brand-name merges)\n\n";
  md += "Rule space: " +
        FormatWithCommas(static_cast<long long>(analysis.stats.total_rules)) +
        " raw rules -> " +
        FormatWithCommas(
            static_cast<long long>(analysis.stats.filtered_rules)) +
        " drug=>ADR -> " +
        FormatWithCommas(static_cast<long long>(analysis.stats.mcac_count)) +
        " contextual clusters\n\n";

  md += "## Top interaction signals (exclusiveness ranking)\n\n";
  md += "| # | combination => reactions | supp | conf | excl | PRR "
        "[95% CI] | severity | novelty |\n";
  md += "|---|---|---|---|---|---|---|---|\n";
  const size_t top_k = std::min(options.top_signals, ranked.size());
  for (size_t i = 0; i < top_k; ++i) {
    const RankedMcac& entry = ranked[i];
    auto panel = EvaluateDisproportionality(current.transactions,
                                            entry.mcac.target);
    RatioInterval ci = PrrInterval(panel.table);
    md += "| " + std::to_string(i + 1) + " | " +
          RuleToString(entry.mcac.target, current.items) + " | " +
          std::to_string(entry.mcac.target.support) + " | " +
          FormatDouble(entry.mcac.target.confidence, 2) + " | " +
          FormatDouble(entry.score, 3) + " | " + Ratio(panel.prr) + " [" +
          Ratio(ci.lower) + ", " + Ratio(ci.upper) + "] | " +
          SeverityName(MaxSeverity(entry.mcac.target, current.items)) +
          " | " +
          NoveltyClassName(kb.Classify(entry.mcac.target, current.items)) +
          " |\n";
  }

  md += "\n## Severe, previously undocumented signals\n\n";
  size_t alerts = 0;
  for (size_t i = 0; i < ranked.size() && alerts < options.max_alerts; ++i) {
    const DrugAdrRule& target = ranked[i].mcac.target;
    if (static_cast<int>(MaxSeverity(target, current.items)) <
        static_cast<int>(options.alert_severity)) {
      continue;
    }
    if (kb.Classify(target, current.items) ==
        NoveltyClass::kKnownInteraction) {
      continue;
    }
    md += "- **" + RuleToString(target, current.items) + "** (rank " +
          std::to_string(i + 1) + ", exclusiveness " +
          FormatDouble(ranked[i].score, 3) + ") — needs review\n";
    ++alerts;
  }
  if (alerts == 0) md += "- none this quarter\n";

  if (!inputs.watchlist.empty()) {
    md += "\n## Watched combinations — quarter-over-quarter\n\n";
    // Header from the first entry's labels.
    md += "| combination |";
    for (const auto& row : inputs.watchlist.front().trend) {
      md += " " + row.label + " |";
    }
    md += " trend |\n|---|";
    for (size_t i = 0; i < inputs.watchlist.front().trend.size(); ++i) {
      md += "---|";
    }
    md += "---|\n";
    for (const WatchlistEntry& entry : inputs.watchlist) {
      // Append piecewise rather than chaining operator+: GCC 12 raises a
      // -Wrestrict false positive (PR105651) on the inlined temporary chain,
      // and piecewise appends skip the temporaries entirely.
      md += "| ";
      md += entry.label;
      md += " |";
      for (const auto& row : entry.trend) {
        md += ' ';
        md += FormatDouble(row.confidence, 2);
        md += " |";
      }
      md += ' ';
      md += TrendVerdictName(ClassifyTrend(entry.trend));
      md += " |\n";
    }
  }
  return md;
}

}  // namespace maras::core
