#include "core/support_classifier.h"

#include "mining/closed_itemsets.h"

namespace maras::core {

const char* SupportKindName(SupportKind kind) {
  switch (kind) {
    case SupportKind::kExplicit:
      return "explicit";
    case SupportKind::kImplicit:
      return "implicit";
    case SupportKind::kUnsupported:
      return "unsupported";
    case SupportKind::kAbsent:
      return "absent";
  }
  return "?";
}

SupportKind ClassifySupport(const mining::TransactionDatabase& db,
                            const mining::Itemset& s) {
  std::vector<mining::TransactionId> tids = db.ContainingTransactions(s);
  if (tids.empty()) return SupportKind::kAbsent;
  for (mining::TransactionId tid : tids) {
    if (db.transaction(tid).size() == s.size()) {
      // Containment plus equal size means exact equality.
      return SupportKind::kExplicit;
    }
  }
  if (tids.size() < 2) return SupportKind::kUnsupported;
  // Closure check: intersect all containing transactions.
  mining::Itemset closure = db.transaction(tids[0]);
  for (size_t i = 1; i < tids.size() && closure.size() > s.size(); ++i) {
    closure = mining::Intersect(closure, db.transaction(tids[i]));
  }
  return closure == s ? SupportKind::kImplicit : SupportKind::kUnsupported;
}

bool IsSupported(const mining::TransactionDatabase& db,
                 const mining::Itemset& s) {
  SupportKind kind = ClassifySupport(db, s);
  return kind == SupportKind::kExplicit || kind == SupportKind::kImplicit;
}

bool HasPairwiseWitness(const mining::TransactionDatabase& db,
                        const mining::Itemset& s) {
  std::vector<mining::TransactionId> tids = db.ContainingTransactions(s);
  for (size_t i = 0; i < tids.size(); ++i) {
    const mining::Itemset& a = db.transaction(tids[i]);
    for (size_t j = i + 1; j < tids.size(); ++j) {
      if (mining::Intersect(a, db.transaction(tids[j])) == s) return true;
    }
  }
  return false;
}

}  // namespace maras::core
