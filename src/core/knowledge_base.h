#ifndef MARAS_CORE_KNOWLEDGE_BASE_H_
#define MARAS_CORE_KNOWLEDGE_BASE_H_

#include <string>
#include <vector>

#include "core/mcac.h"
#include "mining/item_dictionary.h"

namespace maras::core {

// ---------------------------------------------------------------------------
// Domain-knowledge integration (Sections 1.3/1.4): "the system might select
// a drug-drug interaction as interesting but it might not be interesting
// for the decision makers because it is already known, and they want to
// know the unknown drug-drug interactions." A KnowledgeBase holds the
// already-documented interactions (e.g. from Drugs.com/DrugBank labels) and
// classifies each mined cluster as known, a novel ADR for a known
// combination, or an entirely novel combination — the evaluator's filter.
// ---------------------------------------------------------------------------

enum class NoveltyClass {
  // The drug combination and at least one of its ADRs are documented.
  kKnownInteraction,
  // The combination is documented but none of the mined ADRs are — an
  // unknown ADR of a known interaction.
  kNovelAdrForKnownCombination,
  // No documented interaction covers this combination.
  kNovelCombination,
};

const char* NoveltyClassName(NoveltyClass klass);

class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  // Registers a documented interaction by canonical names. `source` is a
  // free-form provenance note (label text, literature citation).
  void AddInteraction(std::vector<std::string> drugs,
                      std::vector<std::string> adrs, std::string source);

  size_t size() const { return entries_.size(); }

  // Classifies a mined rule. A documented entry matches when its drug set
  // is a subset of the rule's drugs (a documented pair inside a mined
  // triple is still "known").
  NoveltyClass Classify(const DrugAdrRule& rule,
                        const mining::ItemDictionary& items) const;

  // Provenance notes of every documented entry matching the rule's drugs.
  std::vector<std::string> MatchingSources(
      const DrugAdrRule& rule, const mining::ItemDictionary& items) const;

  // Convenience filter: the clusters the evaluator has NOT seen before
  // (novel combination or novel ADR).
  std::vector<Mcac> FilterNovel(const std::vector<Mcac>& mcacs,
                                const mining::ItemDictionary& items) const;

 private:
  struct Entry {
    std::vector<std::string> drugs;  // canonical, sorted
    std::vector<std::string> adrs;   // canonical, sorted
    std::string source;
  };

  // True when every drug of `entry` appears in `rule`'s antecedent.
  static bool DrugsMatch(const Entry& entry, const DrugAdrRule& rule,
                         const mining::ItemDictionary& items);

  std::vector<Entry> entries_;
};

// A KnowledgeBase pre-loaded with this repository's curated literature
// interactions (faers::KnownInteractions()).
KnowledgeBase CuratedKnowledgeBase();

}  // namespace maras::core

#endif  // MARAS_CORE_KNOWLEDGE_BASE_H_
