#ifndef MARAS_CORE_RANKING_H_
#define MARAS_CORE_RANKING_H_

#include <string>
#include <vector>

#include "core/exclusiveness.h"
#include "core/mcac.h"

namespace maras::core {

// The four ranking strategies of Table 5.2 plus the improvement baseline.
enum class RankingMethod {
  kConfidence,
  kLift,
  kExclusivenessConfidence,
  kExclusivenessLift,
  kImprovement,
};

const char* RankingMethodName(RankingMethod method);

// An MCAC with its score under some ranking method.
struct RankedMcac {
  Mcac mcac;
  double score = 0.0;
};

// Scores one MCAC under `method` (θ/decay apply to the exclusiveness
// methods only; `options.measure` is overridden by the method).
double ScoreMcac(const Mcac& mcac, RankingMethod method,
                 const ExclusivenessOptions& options);

// Scores and sorts descending; ties break by higher target support, then by
// the target rule's item ids, so rankings are fully deterministic.
std::vector<RankedMcac> RankMcacs(const std::vector<Mcac>& mcacs,
                                  RankingMethod method,
                                  const ExclusivenessOptions& options);

}  // namespace maras::core

#endif  // MARAS_CORE_RANKING_H_
