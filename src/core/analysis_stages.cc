#include "core/analysis_stages.h"

#include <optional>
#include <utility>

#include "mining/closed_itemsets.h"
#include "mining/concept_lattice.h"
#include "mining/rules.h"
#include "util/run_context.h"
#include "util/thread_pool.h"

namespace maras::core {

namespace {

// Counts drug/ADR items of `itemset` under the merged vocabulary.
void CountItemDomains(const mining::Itemset& itemset,
                      const mining::ItemDictionary& items, size_t* drugs,
                      size_t* adrs) {
  *drugs = 0;
  *adrs = 0;
  for (mining::ItemId id : itemset) {
    if (items.Domain(id) == mining::ItemDomain::kDrug) {
      ++*drugs;
    } else {
      ++*adrs;
    }
  }
}

}  // namespace

maras::StatusOr<ClosedCheckpoint> BuildClosedStage(
    GovernedMineResult mined, const mining::ItemDictionary& items,
    const AnalyzerOptions& analyzer, const RunContext& ctx) {
  ClosedCheckpoint closed_stage;
  closed_stage.min_support_used = mined.min_support_used;
  closed_stage.truncated = mined.truncated;
  closed_stage.notes = std::move(mined.notes);
  MARAS_ASSIGN_OR_RETURN(
      mining::RuleSpaceCount rule_count,
      mining::CountAllPartitionRules(mined.frequent, analyzer.min_confidence,
                                     ctx));
  closed_stage.stats.total_rules = rule_count.total_rules;
  for (const mining::FrequentItemset& fi : mined.frequent.itemsets()) {
    size_t drugs = 0, adrs = 0;
    CountItemDomains(fi.items, items, &drugs, &adrs);
    if (drugs >= 1 && adrs >= 1) ++closed_stage.stats.filtered_rules;
  }
  MARAS_ASSIGN_OR_RETURN(
      closed_stage.closed,
      mining::FilterClosed(mined.frequent, analyzer.mining.num_threads, ctx));
  for (const mining::FrequentItemset& fi : closed_stage.closed.itemsets()) {
    size_t drugs = 0, adrs = 0;
    CountItemDomains(fi.items, items, &drugs, &adrs);
    if (drugs >= 1 && adrs >= 1) ++closed_stage.stats.closed_mixed;
  }
  return closed_stage;
}

maras::StatusOr<std::vector<DrugAdrRule>> BuildRulesStage(
    const mining::FrequentItemsetResult& closed,
    const mining::ItemDictionary& items,
    const mining::TransactionDatabase& db, const AnalyzerOptions& analyzer,
    const RunContext& ctx) {
  std::vector<const mining::FrequentItemset*> candidates;
  for (const mining::FrequentItemset& fi : closed.itemsets()) {
    size_t drugs = 0, adrs = 0;
    CountItemDomains(fi.items, items, &drugs, &adrs);
    if (drugs < 2 || adrs < 1) continue;
    if (drugs > analyzer.max_drugs_per_rule) continue;
    candidates.push_back(&fi);
  }
  std::vector<std::optional<DrugAdrRule>> built(candidates.size());
  std::vector<maras::Status> errors(candidates.size());
  maras::Status status = maras::TryParallelFor(
      analyzer.mining.num_threads, candidates.size(), ctx,
      [&](size_t i) -> maras::Status {
        const mining::FrequentItemset& fi = *candidates[i];
        if (analyzer.verify_closed_in_db &&
            !mining::IsClosedInDatabase(db, fi.items)) {
          return maras::Status::OK();
        }
        maras::StatusOr<DrugAdrRule> target = BuildRule(fi.items, items, db);
        if (!target.ok()) {
          errors[i] = target.status();
          return maras::Status::OK();
        }
        if (target->confidence >= analyzer.min_confidence) {
          built[i] = *std::move(target);
        }
        return maras::Status::OK();
      });
  if (!status.ok()) return maras::WithContext(status, "rule-gen");
  std::vector<DrugAdrRule> rules;
  for (size_t i = 0; i < built.size(); ++i) {
    MARAS_RETURN_IF_ERROR(errors[i]);
    if (built[i].has_value()) rules.push_back(*std::move(built[i]));
  }
  return rules;
}

bool LatticeMcacEligible(const AnalyzerOptions& analyzer) {
  // Exactness gate (concept_lattice.h): every closed node below a
  // database-closed target is itself database-closed, so the descent needs
  // either an uncapped family or database-verified targets.
  return analyzer.lattice_mcac && (analyzer.mining.max_itemset_size == 0 ||
                                   analyzer.verify_closed_in_db);
}

maras::StatusOr<mining::ConceptLattice> BuildLatticeStage(
    const mining::FrequentItemsetResult& closed,
    const AnalyzerOptions& analyzer, const RunContext& ctx) {
  MARAS_ASSIGN_OR_RETURN(
      mining::ConceptLattice lattice,
      mining::ConceptLattice::Build(closed, analyzer.mining.num_threads, ctx));
  return lattice;
}

maras::StatusOr<std::vector<RankedMcac>> BuildRankedStage(
    const std::vector<DrugAdrRule>& rules,
    const mining::ItemDictionary& items,
    const mining::TransactionDatabase& db, RankingMethod method,
    const AnalyzerOptions& analyzer, const RunContext& ctx,
    const mining::ConceptLattice* lattice) {
  mining::SubsetSupportCache cache(&db);
  McacBuilder builder = lattice != nullptr
                            ? McacBuilder(&items, &db, lattice, &cache)
                            : McacBuilder(&items, &db);
  std::vector<std::optional<maras::StatusOr<Mcac>>> built(rules.size());
  maras::Status status = maras::TryParallelFor(
      analyzer.mining.num_threads, rules.size(), ctx,
      [&](size_t i) -> maras::Status {
        built[i].emplace(builder.Build(rules[i]));
        return maras::Status::OK();
      });
  if (!status.ok()) return maras::WithContext(status, "mcac-build");
  std::vector<Mcac> mcacs;
  for (std::optional<maras::StatusOr<Mcac>>& slot : built) {
    MARAS_ASSIGN_OR_RETURN(Mcac mcac, std::move(*slot));
    mcacs.push_back(std::move(mcac));
  }
  return RankMcacs(mcacs, method, analyzer.exclusiveness);
}

}  // namespace maras::core
