#include "core/disproportionality.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "mining/bitmap.h"
#include "util/thread_pool.h"

namespace maras::core {

namespace {

double Capped(double v) {
  if (!std::isfinite(v)) return kDisproportionalityCap;
  return std::min(v, kDisproportionalityCap);
}

}  // namespace

ContingencyTable MakeContingencyTable(const mining::TransactionDatabase& db,
                                      const mining::Itemset& drugs,
                                      const mining::Itemset& adrs) {
  ContingencyTable t;
  const size_t n = db.size();
  const size_t with_drugs = db.Support(drugs);
  const size_t with_adrs = db.Support(adrs);
  t.a = db.Support(mining::Union(drugs, adrs));
  t.b = with_drugs - t.a;
  t.c = with_adrs - t.a;
  t.d = n - with_drugs - t.c;
  return t;
}

double Prr(const ContingencyTable& t) {
  if (t.a + t.b == 0 || t.c + t.d == 0 || t.c == 0) {
    // No exposed reports, no comparator reports, or zero background rate:
    // the ratio is undefined / infinite. Follow practice: 0 when no
    // exposure, cap when the background rate is zero but cases exist.
    if (t.a == 0) return 0.0;
    return t.c == 0 ? kDisproportionalityCap : 0.0;
  }
  double exposed_rate =
      static_cast<double>(t.a) / static_cast<double>(t.a + t.b);
  double background_rate =
      static_cast<double>(t.c) / static_cast<double>(t.c + t.d);
  if (background_rate == 0.0) return kDisproportionalityCap;
  return Capped(exposed_rate / background_rate);
}

double Ror(const ContingencyTable& t) {
  if (t.a == 0) return 0.0;
  if (t.b == 0 || t.c == 0) return kDisproportionalityCap;
  return Capped((static_cast<double>(t.a) * static_cast<double>(t.d)) /
                (static_cast<double>(t.b) * static_cast<double>(t.c)));
}

double ChiSquaredYates(const ContingencyTable& t) {
  const double n = static_cast<double>(t.n());
  if (n == 0.0) return 0.0;
  const double a = static_cast<double>(t.a);
  const double b = static_cast<double>(t.b);
  const double c = static_cast<double>(t.c);
  const double d = static_cast<double>(t.d);
  const double row1 = a + b, row2 = c + d;
  const double col1 = a + c, col2 = b + d;
  if (row1 == 0 || row2 == 0 || col1 == 0 || col2 == 0) return 0.0;
  double diff = std::abs(a * d - b * c) - n / 2.0;
  if (diff < 0.0) diff = 0.0;  // Yates correction cannot flip the sign
  return (n * diff * diff) / (row1 * row2 * col1 * col2);
}

double InformationComponent(const ContingencyTable& t) {
  const double n = static_cast<double>(t.n());
  if (n == 0.0) return 0.0;
  const double a = static_cast<double>(t.a);
  const double expected = (a + static_cast<double>(t.b)) *
                          (a + static_cast<double>(t.c)) / n;
  return std::log2((a + 0.5) / (expected + 0.5));
}

namespace {

RatioInterval IntervalAround(double estimate, double standard_error,
                             double z) {
  if (estimate <= 0.0 || !std::isfinite(standard_error) ||
      standard_error <= 0.0 || estimate >= kDisproportionalityCap) {
    return RatioInterval{0.0, kDisproportionalityCap};
  }
  double log_estimate = std::log(estimate);
  return RatioInterval{
      std::exp(log_estimate - z * standard_error),
      std::min(std::exp(log_estimate + z * standard_error),
               kDisproportionalityCap)};
}

}  // namespace

RatioInterval PrrInterval(const ContingencyTable& t, double z) {
  if (t.a == 0 || t.c == 0 || t.a + t.b == 0 || t.c + t.d == 0) {
    return RatioInterval{0.0, kDisproportionalityCap};
  }
  double se = std::sqrt(1.0 / static_cast<double>(t.a) -
                        1.0 / static_cast<double>(t.a + t.b) +
                        1.0 / static_cast<double>(t.c) -
                        1.0 / static_cast<double>(t.c + t.d));
  return IntervalAround(Prr(t), se, z);
}

RatioInterval RorInterval(const ContingencyTable& t, double z) {
  if (t.a == 0 || t.b == 0 || t.c == 0 || t.d == 0) {
    return RatioInterval{0.0, kDisproportionalityCap};
  }
  double se = std::sqrt(
      1.0 / static_cast<double>(t.a) + 1.0 / static_cast<double>(t.b) +
      1.0 / static_cast<double>(t.c) + 1.0 / static_cast<double>(t.d));
  return IntervalAround(Ror(t), se, z);
}

DisproportionalityResult EvaluateDisproportionality(
    const mining::TransactionDatabase& db, const DrugAdrRule& rule) {
  DisproportionalityResult result;
  result.table = MakeContingencyTable(db, rule.drugs, rule.adrs);
  result.prr = Prr(result.table);
  result.ror = Ror(result.table);
  result.chi_squared = ChiSquaredYates(result.table);
  result.information_component = InformationComponent(result.table);
  return result;
}

namespace {

// Dense bitmaps for the distinct items the rule batch touches, built once
// from the vertical index and shared (read-only) by every counting task.
class ItemBitmapCache {
 public:
  ItemBitmapCache(const mining::TransactionDatabase& db,
                  const std::vector<DrugAdrRule>& rules)
      : universe_(db.size()),
        bitmaps_(db.item_bound()),
        built_(db.item_bound(), 0) {
    zero_.Reset(universe_);
    full_.Reset(universe_);
    full_.Fill();
    for (const DrugAdrRule& rule : rules) {
      for (mining::ItemId item : rule.drugs) Build(db, item);
      for (mining::ItemId item : rule.adrs) Build(db, item);
    }
  }

  // Returns the AND of s's item bitmaps and stores its popcount in
  // *support. Empty and single-item sets alias cached storage; larger sets
  // materialize into *storage via *scratch (both recycled across calls).
  const mining::TidBitmap* Intersect(const mining::Itemset& s,
                                     mining::TidBitmap* storage,
                                     mining::TidBitmap* scratch,
                                     size_t* support) const {
    if (s.empty()) {
      *support = universe_;
      return &full_;
    }
    const mining::TidBitmap* acc = &Bitmap(s[0]);
    if (s.size() == 1) {
      *support = mining::BitmapPopcount(*acc);
      return acc;
    }
    *support = mining::BitmapAnd(*acc, Bitmap(s[1]), storage);
    for (size_t i = 2; i < s.size(); ++i) {
      *support = mining::BitmapAnd(*storage, Bitmap(s[i]), scratch);
      std::swap(*storage, *scratch);
    }
    return storage;
  }

 private:
  const mining::TidBitmap& Bitmap(mining::ItemId item) const {
    // Items beyond the db's bound were never seen: the empty set, exactly
    // what the scalar path's Support() returns 0 for.
    return static_cast<size_t>(item) < bitmaps_.size() &&
                   built_[static_cast<size_t>(item)]
               ? bitmaps_[static_cast<size_t>(item)]
               : zero_;
  }

  void Build(const mining::TransactionDatabase& db, mining::ItemId item) {
    const size_t idx = static_cast<size_t>(item);
    if (idx >= bitmaps_.size() || built_[idx]) return;
    bitmaps_[idx] = mining::TidBitmap::FromTids(db.TidList(item), universe_);
    built_[idx] = 1;
  }

  size_t universe_;
  mining::TidBitmap zero_;  // never-seen items
  mining::TidBitmap full_;  // the empty itemset (support == universe)
  std::vector<mining::TidBitmap> bitmaps_;
  std::vector<char> built_;
};

}  // namespace

ContingencyBatch MakeContingencyTables(const mining::TransactionDatabase& db,
                                       const std::vector<DrugAdrRule>& rules,
                                       size_t num_threads) {
  ContingencyBatch batch;
  batch.a.resize(rules.size());
  batch.b.resize(rules.size());
  batch.c.resize(rules.size());
  batch.d.resize(rules.size());
  if (rules.empty()) return batch;

  const ItemBitmapCache cache(db, rules);
  const size_t n = db.size();

  // One rule's lane: the margins come from the materialized drug/adr
  // bitmaps, the joint cell from one AND+popcount pass — never a merge.
  const auto lane = [&](size_t i, mining::TidBitmap* drugs_storage,
                        mining::TidBitmap* adrs_storage,
                        mining::TidBitmap* scratch) {
    size_t with_drugs = 0;
    size_t with_adrs = 0;
    const mining::TidBitmap* drugs_bm =
        cache.Intersect(rules[i].drugs, drugs_storage, scratch, &with_drugs);
    const mining::TidBitmap* adrs_bm =
        cache.Intersect(rules[i].adrs, adrs_storage, scratch, &with_adrs);
    const size_t a = mining::AndPopcount(*drugs_bm, *adrs_bm);
    batch.a[i] = a;
    batch.b[i] = with_drugs - a;
    batch.c[i] = with_adrs - a;
    batch.d[i] = n - with_drugs - (with_adrs - a);
  };

  const size_t threads = maras::EffectiveThreads(num_threads, rules.size());
  if (threads <= 1) {
    mining::TidBitmap drugs_storage, adrs_storage, scratch;
    for (size_t i = 0; i < rules.size(); ++i) {
      lane(i, &drugs_storage, &adrs_storage, &scratch);
    }
  } else {
    // Static round-robin over `threads` tasks so each task owns a scratch
    // set; lane i writes only slot i, so the lanes are scheduling-free.
    maras::ParallelFor(threads, threads, [&](size_t t) {
      mining::TidBitmap drugs_storage, adrs_storage, scratch;
      for (size_t i = t; i < rules.size(); i += threads) {
        lane(i, &drugs_storage, &adrs_storage, &scratch);
      }
    });
  }
  return batch;
}

std::vector<DisproportionalityResult> EvaluateDisproportionalityBatch(
    const mining::TransactionDatabase& db, const std::vector<DrugAdrRule>& rules,
    size_t num_threads) {
  const ContingencyBatch batch = MakeContingencyTables(db, rules, num_threads);
  std::vector<DisproportionalityResult> results(batch.size());
  // Each measure sweeps its own SoA pass through the same scalar functions
  // the one-rule path uses, so every double matches bit-for-bit.
  for (size_t i = 0; i < batch.size(); ++i) {
    results[i].table = batch.Table(i);
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    results[i].prr = Prr(results[i].table);
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    results[i].ror = Ror(results[i].table);
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    results[i].chi_squared = ChiSquaredYates(results[i].table);
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    results[i].information_component = InformationComponent(results[i].table);
  }
  return results;
}

}  // namespace maras::core
