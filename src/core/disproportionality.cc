#include "core/disproportionality.h"

#include <algorithm>
#include <cmath>

namespace maras::core {

namespace {

double Capped(double v) {
  if (!std::isfinite(v)) return kDisproportionalityCap;
  return std::min(v, kDisproportionalityCap);
}

}  // namespace

ContingencyTable MakeContingencyTable(const mining::TransactionDatabase& db,
                                      const mining::Itemset& drugs,
                                      const mining::Itemset& adrs) {
  ContingencyTable t;
  const size_t n = db.size();
  const size_t with_drugs = db.Support(drugs);
  const size_t with_adrs = db.Support(adrs);
  t.a = db.Support(mining::Union(drugs, adrs));
  t.b = with_drugs - t.a;
  t.c = with_adrs - t.a;
  t.d = n - with_drugs - t.c;
  return t;
}

double Prr(const ContingencyTable& t) {
  if (t.a + t.b == 0 || t.c + t.d == 0 || t.c == 0) {
    // No exposed reports, no comparator reports, or zero background rate:
    // the ratio is undefined / infinite. Follow practice: 0 when no
    // exposure, cap when the background rate is zero but cases exist.
    if (t.a == 0) return 0.0;
    return t.c == 0 ? kDisproportionalityCap : 0.0;
  }
  double exposed_rate =
      static_cast<double>(t.a) / static_cast<double>(t.a + t.b);
  double background_rate =
      static_cast<double>(t.c) / static_cast<double>(t.c + t.d);
  if (background_rate == 0.0) return kDisproportionalityCap;
  return Capped(exposed_rate / background_rate);
}

double Ror(const ContingencyTable& t) {
  if (t.a == 0) return 0.0;
  if (t.b == 0 || t.c == 0) return kDisproportionalityCap;
  return Capped((static_cast<double>(t.a) * static_cast<double>(t.d)) /
                (static_cast<double>(t.b) * static_cast<double>(t.c)));
}

double ChiSquaredYates(const ContingencyTable& t) {
  const double n = static_cast<double>(t.n());
  if (n == 0.0) return 0.0;
  const double a = static_cast<double>(t.a);
  const double b = static_cast<double>(t.b);
  const double c = static_cast<double>(t.c);
  const double d = static_cast<double>(t.d);
  const double row1 = a + b, row2 = c + d;
  const double col1 = a + c, col2 = b + d;
  if (row1 == 0 || row2 == 0 || col1 == 0 || col2 == 0) return 0.0;
  double diff = std::abs(a * d - b * c) - n / 2.0;
  if (diff < 0.0) diff = 0.0;  // Yates correction cannot flip the sign
  return (n * diff * diff) / (row1 * row2 * col1 * col2);
}

double InformationComponent(const ContingencyTable& t) {
  const double n = static_cast<double>(t.n());
  if (n == 0.0) return 0.0;
  const double a = static_cast<double>(t.a);
  const double expected = (a + static_cast<double>(t.b)) *
                          (a + static_cast<double>(t.c)) / n;
  return std::log2((a + 0.5) / (expected + 0.5));
}

namespace {

RatioInterval IntervalAround(double estimate, double standard_error,
                             double z) {
  if (estimate <= 0.0 || !std::isfinite(standard_error) ||
      standard_error <= 0.0 || estimate >= kDisproportionalityCap) {
    return RatioInterval{0.0, kDisproportionalityCap};
  }
  double log_estimate = std::log(estimate);
  return RatioInterval{
      std::exp(log_estimate - z * standard_error),
      std::min(std::exp(log_estimate + z * standard_error),
               kDisproportionalityCap)};
}

}  // namespace

RatioInterval PrrInterval(const ContingencyTable& t, double z) {
  if (t.a == 0 || t.c == 0 || t.a + t.b == 0 || t.c + t.d == 0) {
    return RatioInterval{0.0, kDisproportionalityCap};
  }
  double se = std::sqrt(1.0 / static_cast<double>(t.a) -
                        1.0 / static_cast<double>(t.a + t.b) +
                        1.0 / static_cast<double>(t.c) -
                        1.0 / static_cast<double>(t.c + t.d));
  return IntervalAround(Prr(t), se, z);
}

RatioInterval RorInterval(const ContingencyTable& t, double z) {
  if (t.a == 0 || t.b == 0 || t.c == 0 || t.d == 0) {
    return RatioInterval{0.0, kDisproportionalityCap};
  }
  double se = std::sqrt(
      1.0 / static_cast<double>(t.a) + 1.0 / static_cast<double>(t.b) +
      1.0 / static_cast<double>(t.c) + 1.0 / static_cast<double>(t.d));
  return IntervalAround(Ror(t), se, z);
}

DisproportionalityResult EvaluateDisproportionality(
    const mining::TransactionDatabase& db, const DrugAdrRule& rule) {
  DisproportionalityResult result;
  result.table = MakeContingencyTable(db, rule.drugs, rule.adrs);
  result.prr = Prr(result.table);
  result.ror = Ror(result.table);
  result.chi_squared = ChiSquaredYates(result.table);
  result.information_component = InformationComponent(result.table);
  return result;
}

}  // namespace maras::core
