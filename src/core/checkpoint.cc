#include "core/checkpoint.h"

#include <filesystem>

#include "util/binary_io.h"
#include "util/delimited.h"

namespace maras::core {

namespace {

// "MRCK" read as a little-endian u32.
constexpr uint32_t kCheckpointMagic = 0x4b43524d;

maras::Status Corrupt(const std::string& path, const std::string& stage,
                      const std::string& why) {
  return maras::WithContext(maras::Status::Corruption(why),
                            path + " [stage " + stage + "]");
}

// --- shared sub-codecs ----------------------------------------------------

void EncodeItemset(BinaryWriter* w, const mining::Itemset& s) {
  w->U32(static_cast<uint32_t>(s.size()));
  for (mining::ItemId id : s) w->U32(id);
}

maras::Status DecodeItemset(BinaryReader* r, mining::Itemset* s) {
  uint32_t n = 0;
  MARAS_RETURN_IF_ERROR(r->Count32(&n, sizeof(uint32_t)));
  s->clear();
  s->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t id = 0;
    MARAS_RETURN_IF_ERROR(r->U32(&id));
    s->push_back(id);
  }
  return maras::Status::OK();
}

void EncodeStrings(BinaryWriter* w, const std::vector<std::string>& v) {
  w->U64(v.size());
  for (const std::string& s : v) w->Str(s);
}

maras::Status DecodeStrings(BinaryReader* r, std::vector<std::string>* v) {
  uint64_t n = 0;
  MARAS_RETURN_IF_ERROR(r->U64(&n));
  v->clear();
  for (uint64_t i = 0; i < n; ++i) {
    std::string s;
    MARAS_RETURN_IF_ERROR(r->Str(&s));
    v->push_back(std::move(s));
  }
  return maras::Status::OK();
}

void EncodeIngestReport(BinaryWriter* w, const faers::IngestReport& report) {
  w->U64(report.rows_seen);
  w->U64(report.rows_rejected);
  w->U64(report.collateral_rows);
  w->U64(report.reports_ingested);
  w->U64(report.quarantined.size());
  for (const faers::QuarantinedRow& row : report.quarantined) {
    w->U8(static_cast<uint8_t>(row.fault));
    w->Str(row.file);
    w->U64(row.line);
    w->Str(row.column);
    w->Str(row.reason);
    w->Str(row.content);
  }
  w->U8(report.quarantine_overflow ? 1 : 0);
  EncodeStrings(w, report.warnings);
}

maras::Status DecodeIngestReport(BinaryReader* r,
                                 faers::IngestReport* report) {
  uint64_t v = 0;
  MARAS_RETURN_IF_ERROR(r->U64(&v));
  report->rows_seen = static_cast<size_t>(v);
  MARAS_RETURN_IF_ERROR(r->U64(&v));
  report->rows_rejected = static_cast<size_t>(v);
  MARAS_RETURN_IF_ERROR(r->U64(&v));
  report->collateral_rows = static_cast<size_t>(v);
  MARAS_RETURN_IF_ERROR(r->U64(&v));
  report->reports_ingested = static_cast<size_t>(v);
  uint64_t n = 0;
  MARAS_RETURN_IF_ERROR(r->U64(&n));
  report->quarantined.clear();
  for (uint64_t i = 0; i < n; ++i) {
    faers::QuarantinedRow row;
    uint8_t fault = 0;
    MARAS_RETURN_IF_ERROR(r->U8(&fault));
    if (fault > static_cast<uint8_t>(faers::RowFault::kCollateral)) {
      return maras::Status::Corruption("bad row fault " +
                                       std::to_string(fault));
    }
    row.fault = static_cast<faers::RowFault>(fault);
    MARAS_RETURN_IF_ERROR(r->Str(&row.file));
    MARAS_RETURN_IF_ERROR(r->U64(&v));
    row.line = static_cast<size_t>(v);
    MARAS_RETURN_IF_ERROR(r->Str(&row.column));
    MARAS_RETURN_IF_ERROR(r->Str(&row.reason));
    MARAS_RETURN_IF_ERROR(r->Str(&row.content));
    report->quarantined.push_back(std::move(row));
  }
  uint8_t overflow = 0;
  MARAS_RETURN_IF_ERROR(r->U8(&overflow));
  report->quarantine_overflow = overflow != 0;
  return DecodeStrings(r, &report->warnings);
}

// Smallest possible EncodeRule output: two empty itemsets (4-byte counts)
// plus three U64 supports and two F64 measures. Used to validate decoded
// element counts before reserving.
constexpr size_t kMinEncodedRuleBytes = 4 + 4 + 3 * 8 + 2 * 8;

void EncodeRule(BinaryWriter* w, const DrugAdrRule& rule) {
  EncodeItemset(w, rule.drugs);
  EncodeItemset(w, rule.adrs);
  w->U64(rule.support);
  w->U64(rule.antecedent_support);
  w->U64(rule.consequent_support);
  w->F64(rule.confidence);
  w->F64(rule.lift);
}

maras::Status DecodeRule(BinaryReader* r, DrugAdrRule* rule) {
  MARAS_RETURN_IF_ERROR(DecodeItemset(r, &rule->drugs));
  MARAS_RETURN_IF_ERROR(DecodeItemset(r, &rule->adrs));
  uint64_t v = 0;
  MARAS_RETURN_IF_ERROR(r->U64(&v));
  rule->support = static_cast<size_t>(v);
  MARAS_RETURN_IF_ERROR(r->U64(&v));
  rule->antecedent_support = static_cast<size_t>(v);
  MARAS_RETURN_IF_ERROR(r->U64(&v));
  rule->consequent_support = static_cast<size_t>(v);
  MARAS_RETURN_IF_ERROR(r->F64(&rule->confidence));
  return r->F64(&rule->lift);
}

void EncodeMcac(BinaryWriter* w, const Mcac& mcac) {
  EncodeRule(w, mcac.target);
  w->U64(mcac.levels.size());
  for (const std::vector<DrugAdrRule>& level : mcac.levels) {
    w->U64(level.size());
    for (const DrugAdrRule& rule : level) EncodeRule(w, rule);
  }
}

maras::Status DecodeMcac(BinaryReader* r, Mcac* mcac) {
  MARAS_RETURN_IF_ERROR(DecodeRule(r, &mcac->target));
  uint64_t levels = 0;
  MARAS_RETURN_IF_ERROR(r->U64(&levels));
  mcac->levels.clear();
  for (uint64_t l = 0; l < levels; ++l) {
    uint64_t rules = 0;
    MARAS_RETURN_IF_ERROR(r->Count(&rules, kMinEncodedRuleBytes));
    std::vector<DrugAdrRule> level;
    level.reserve(static_cast<size_t>(rules));
    for (uint64_t i = 0; i < rules; ++i) {
      DrugAdrRule rule;
      MARAS_RETURN_IF_ERROR(DecodeRule(r, &rule));
      level.push_back(std::move(rule));
    }
    mcac->levels.push_back(std::move(level));
  }
  return maras::Status::OK();
}

maras::Status RequireExhausted(const BinaryReader& r) {
  if (!r.exhausted()) {
    return maras::Status::Corruption(
        "payload has " + std::to_string(r.remaining()) + " trailing bytes");
  }
  return maras::Status::OK();
}

}  // namespace

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 14695981039346656037ull;
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string CheckpointPath(const std::string& dir, const std::string& stage) {
  return dir + "/" + stage + ".ckpt";
}

maras::Status WriteCheckpoint(const std::string& dir, const std::string& stage,
                              const std::string& payload) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return maras::Status::IOError("cannot create checkpoint dir " + dir +
                                  ": " + ec.message());
  }
  BinaryWriter w;
  w.U32(kCheckpointMagic);
  w.U32(kCheckpointVersion);
  w.Str(stage);
  w.U64(payload.size());
  w.U64(Fnv1a64(payload));
  std::string framed = std::move(w.Take());
  framed += payload;
  return AtomicWriteStringToFile(CheckpointPath(dir, stage), framed);
}

maras::StatusOr<std::string> ReadCheckpoint(const std::string& dir,
                                            const std::string& stage) {
  const std::string path = CheckpointPath(dir, stage);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return maras::Status::NotFound("no checkpoint for stage '" + stage +
                                   "': " + path);
  }
  MARAS_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  BinaryReader r(content);
  uint32_t magic = 0, version = 0;
  if (!r.U32(&magic).ok() || magic != kCheckpointMagic) {
    return Corrupt(path, stage, "bad magic (not a checkpoint file)");
  }
  if (!r.U32(&version).ok()) return Corrupt(path, stage, "truncated header");
  if (version != kCheckpointVersion) {
    return Corrupt(path, stage,
                   "unsupported checkpoint version " + std::to_string(version));
  }
  std::string file_stage;
  uint64_t size = 0, checksum = 0;
  if (!r.Str(&file_stage).ok() || !r.U64(&size).ok() ||
      !r.U64(&checksum).ok()) {
    return Corrupt(path, stage, "truncated header");
  }
  if (file_stage != stage) {
    return Corrupt(path, stage, "stage mismatch: file says '" + file_stage +
                                    "'");
  }
  if (r.remaining() != size) {
    return Corrupt(path, stage,
                   "truncated payload: " + std::to_string(r.remaining()) +
                       " of " + std::to_string(size) + " bytes present");
  }
  std::string payload = content.substr(content.size() - r.remaining());
  if (Fnv1a64(payload) != checksum) {
    return Corrupt(path, stage, "checksum mismatch (torn or corrupt write)");
  }
  return payload;
}

// --- stage codecs ---------------------------------------------------------

std::string EncodePreprocessResult(const faers::PreprocessResult& result) {
  BinaryWriter w;
  w.U64(result.items.size());
  for (size_t i = 0; i < result.items.size(); ++i) {
    auto id = static_cast<mining::ItemId>(i);
    w.Str(result.items.Name(id));
    w.U8(static_cast<uint8_t>(result.items.Domain(id)));
  }
  w.U64(result.transactions.size());
  for (const mining::Itemset& t : result.transactions.transactions()) {
    EncodeItemset(&w, t);
  }
  w.U64(result.primary_ids.size());
  for (uint64_t id : result.primary_ids) w.U64(id);
  w.U64(result.demographics.size());
  for (const faers::CaseDemographics& demo : result.demographics) {
    w.U8(static_cast<uint8_t>(demo.sex));
    w.F64(demo.age);
  }
  const faers::PreprocessStats& s = result.stats;
  for (size_t counter :
       {s.reports_in, s.reports_kept, s.dropped_not_expedited,
        s.dropped_stale_version, s.dropped_empty, s.distinct_drugs,
        s.distinct_adrs, s.drug_mentions, s.adr_mentions, s.fuzzy_corrections,
        s.alias_resolutions}) {
    w.U64(counter);
  }
  return std::move(w.Take());
}

maras::StatusOr<faers::PreprocessResult> DecodePreprocessResult(
    std::string_view payload) {
  BinaryReader r(payload);
  faers::PreprocessResult result;
  uint64_t items = 0;
  MARAS_RETURN_IF_ERROR(r.U64(&items));
  for (uint64_t i = 0; i < items; ++i) {
    std::string name;
    uint8_t domain = 0;
    MARAS_RETURN_IF_ERROR(r.Str(&name));
    MARAS_RETURN_IF_ERROR(r.U8(&domain));
    if (domain > static_cast<uint8_t>(mining::ItemDomain::kAdr)) {
      return maras::Status::Corruption("bad item domain " +
                                       std::to_string(domain));
    }
    MARAS_ASSIGN_OR_RETURN(
        mining::ItemId id,
        result.items.Intern(name, static_cast<mining::ItemDomain>(domain)));
    if (id != static_cast<mining::ItemId>(i)) {
      return maras::Status::Corruption("duplicate item name '" + name + "'");
    }
  }
  uint64_t transactions = 0;
  MARAS_RETURN_IF_ERROR(r.U64(&transactions));
  for (uint64_t t = 0; t < transactions; ++t) {
    mining::Itemset itemset;
    MARAS_RETURN_IF_ERROR(DecodeItemset(&r, &itemset));
    // Every id must resolve in the dictionary decoded above: the database's
    // vertical index is ItemId-addressed, so an out-of-dictionary id is
    // corruption (and would otherwise size the index by the forged id).
    for (mining::ItemId id : itemset) {
      if (static_cast<uint64_t>(id) >= items) {
        return maras::Status::Corruption("transaction item id " +
                                         std::to_string(id) +
                                         " outside dictionary");
      }
    }
    // Stored transactions are sorted and deduplicated, so Add reproduces
    // them byte-identically.
    result.transactions.Add(std::move(itemset));
  }
  uint64_t ids = 0;
  MARAS_RETURN_IF_ERROR(r.Count(&ids, sizeof(uint64_t)));
  result.primary_ids.reserve(static_cast<size_t>(ids));
  for (uint64_t i = 0; i < ids; ++i) {
    uint64_t id = 0;
    MARAS_RETURN_IF_ERROR(r.U64(&id));
    result.primary_ids.push_back(id);
  }
  uint64_t demos = 0;
  MARAS_RETURN_IF_ERROR(r.Count(&demos, 1));  // >= 1 byte (sex) per entry
  result.demographics.reserve(static_cast<size_t>(demos));
  for (uint64_t i = 0; i < demos; ++i) {
    faers::CaseDemographics demo;
    uint8_t sex = 0;
    MARAS_RETURN_IF_ERROR(r.U8(&sex));
    if (sex > static_cast<uint8_t>(faers::Sex::kMale)) {
      return maras::Status::Corruption("bad sex code " + std::to_string(sex));
    }
    demo.sex = static_cast<faers::Sex>(sex);
    MARAS_RETURN_IF_ERROR(r.F64(&demo.age));
    result.demographics.push_back(demo);
  }
  faers::PreprocessStats& s = result.stats;
  for (size_t* counter :
       {&s.reports_in, &s.reports_kept, &s.dropped_not_expedited,
        &s.dropped_stale_version, &s.dropped_empty, &s.distinct_drugs,
        &s.distinct_adrs, &s.drug_mentions, &s.adr_mentions,
        &s.fuzzy_corrections, &s.alias_resolutions}) {
    uint64_t v = 0;
    MARAS_RETURN_IF_ERROR(r.U64(&v));
    *counter = static_cast<size_t>(v);
  }
  MARAS_RETURN_IF_ERROR(RequireExhausted(r));
  return result;
}

std::string EncodeQuarterCheckpoint(const QuarterCheckpoint& quarter) {
  BinaryWriter w;
  w.Str(quarter.outcome.label);
  w.U8(quarter.outcome.loaded ? 1 : 0);
  w.Str(quarter.outcome.error);
  EncodeIngestReport(&w, quarter.outcome.ingest);
  w.U8(quarter.result.has_value() ? 1 : 0);
  if (quarter.result.has_value()) {
    w.Str(EncodePreprocessResult(*quarter.result));
  }
  return std::move(w.Take());
}

maras::StatusOr<QuarterCheckpoint> DecodeQuarterCheckpoint(
    std::string_view payload) {
  BinaryReader r(payload);
  QuarterCheckpoint quarter;
  MARAS_RETURN_IF_ERROR(r.Str(&quarter.outcome.label));
  uint8_t flag = 0;
  MARAS_RETURN_IF_ERROR(r.U8(&flag));
  quarter.outcome.loaded = flag != 0;
  MARAS_RETURN_IF_ERROR(r.Str(&quarter.outcome.error));
  MARAS_RETURN_IF_ERROR(DecodeIngestReport(&r, &quarter.outcome.ingest));
  MARAS_RETURN_IF_ERROR(r.U8(&flag));
  if (flag != 0) {
    std::string nested;
    MARAS_RETURN_IF_ERROR(r.Str(&nested));
    MARAS_ASSIGN_OR_RETURN(quarter.result, DecodePreprocessResult(nested));
  }
  MARAS_RETURN_IF_ERROR(RequireExhausted(r));
  return quarter;
}

std::string EncodeItemsetResult(const mining::FrequentItemsetResult& result) {
  BinaryWriter w;
  w.U64(result.size());
  for (const mining::FrequentItemset& fi : result.itemsets()) {
    EncodeItemset(&w, fi.items);
    w.U64(fi.support);
  }
  return std::move(w.Take());
}

maras::StatusOr<mining::FrequentItemsetResult> DecodeItemsetResult(
    std::string_view payload) {
  BinaryReader r(payload);
  mining::FrequentItemsetResult result;
  uint64_t n = 0;
  MARAS_RETURN_IF_ERROR(r.U64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    mining::Itemset items;
    MARAS_RETURN_IF_ERROR(DecodeItemset(&r, &items));
    uint64_t support = 0;
    MARAS_RETURN_IF_ERROR(r.U64(&support));
    // Itemsets were stored in canonical order; Add preserves it.
    result.Add(std::move(items), static_cast<size_t>(support));
  }
  MARAS_RETURN_IF_ERROR(RequireExhausted(r));
  return result;
}

std::string EncodeClosedCheckpoint(const ClosedCheckpoint& closed) {
  BinaryWriter w;
  w.U64(closed.stats.total_rules);
  w.U64(closed.stats.filtered_rules);
  w.U64(closed.stats.closed_mixed);
  w.U64(closed.stats.mcac_count);
  w.U64(closed.min_support_used);
  w.U8(closed.truncated ? 1 : 0);
  EncodeStrings(&w, closed.notes);
  w.Str(EncodeItemsetResult(closed.closed));
  return std::move(w.Take());
}

maras::StatusOr<ClosedCheckpoint> DecodeClosedCheckpoint(
    std::string_view payload) {
  BinaryReader r(payload);
  ClosedCheckpoint closed;
  MARAS_RETURN_IF_ERROR(r.U64(&closed.stats.total_rules));
  MARAS_RETURN_IF_ERROR(r.U64(&closed.stats.filtered_rules));
  MARAS_RETURN_IF_ERROR(r.U64(&closed.stats.closed_mixed));
  MARAS_RETURN_IF_ERROR(r.U64(&closed.stats.mcac_count));
  MARAS_RETURN_IF_ERROR(r.U64(&closed.min_support_used));
  uint8_t truncated = 0;
  MARAS_RETURN_IF_ERROR(r.U8(&truncated));
  closed.truncated = truncated != 0;
  MARAS_RETURN_IF_ERROR(DecodeStrings(&r, &closed.notes));
  std::string nested;
  MARAS_RETURN_IF_ERROR(r.Str(&nested));
  MARAS_ASSIGN_OR_RETURN(closed.closed, DecodeItemsetResult(nested));
  MARAS_RETURN_IF_ERROR(RequireExhausted(r));
  return closed;
}

std::string EncodeMineShardCheckpoint(const MineShardCheckpoint& shard) {
  BinaryWriter w;
  w.U64(shard.shard_index);
  w.U64(shard.shard_count);
  w.U64(shard.min_support);
  w.U64(shard.max_itemset_size);
  w.Str(EncodeItemsetResult(shard.frequent));
  return std::move(w.Take());
}

maras::StatusOr<MineShardCheckpoint> DecodeMineShardCheckpoint(
    std::string_view payload) {
  BinaryReader r(payload);
  MineShardCheckpoint shard;
  MARAS_RETURN_IF_ERROR(r.U64(&shard.shard_index));
  MARAS_RETURN_IF_ERROR(r.U64(&shard.shard_count));
  MARAS_RETURN_IF_ERROR(r.U64(&shard.min_support));
  MARAS_RETURN_IF_ERROR(r.U64(&shard.max_itemset_size));
  if (shard.shard_count == 0 || shard.shard_index >= shard.shard_count) {
    return maras::Status::Corruption(
        "bad shard coordinates " + std::to_string(shard.shard_index) + "/" +
        std::to_string(shard.shard_count));
  }
  std::string nested;
  MARAS_RETURN_IF_ERROR(r.Str(&nested));
  MARAS_ASSIGN_OR_RETURN(shard.frequent, DecodeItemsetResult(nested));
  MARAS_RETURN_IF_ERROR(RequireExhausted(r));
  return shard;
}

std::string EncodeRules(const std::vector<DrugAdrRule>& rules) {
  BinaryWriter w;
  w.U64(rules.size());
  for (const DrugAdrRule& rule : rules) EncodeRule(&w, rule);
  return std::move(w.Take());
}

maras::StatusOr<std::vector<DrugAdrRule>> DecodeRules(
    std::string_view payload) {
  BinaryReader r(payload);
  uint64_t n = 0;
  MARAS_RETURN_IF_ERROR(r.Count(&n, kMinEncodedRuleBytes));
  std::vector<DrugAdrRule> rules;
  rules.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    DrugAdrRule rule;
    MARAS_RETURN_IF_ERROR(DecodeRule(&r, &rule));
    rules.push_back(std::move(rule));
  }
  MARAS_RETURN_IF_ERROR(RequireExhausted(r));
  return rules;
}

std::string EncodeRankedMcacs(const std::vector<RankedMcac>& ranked) {
  BinaryWriter w;
  w.U64(ranked.size());
  for (const RankedMcac& entry : ranked) {
    EncodeMcac(&w, entry.mcac);
    w.F64(entry.score);
  }
  return std::move(w.Take());
}

maras::StatusOr<std::vector<RankedMcac>> DecodeRankedMcacs(
    std::string_view payload) {
  BinaryReader r(payload);
  uint64_t n = 0;
  // Each RankedMcac holds at least a target rule, a level count, a score.
  MARAS_RETURN_IF_ERROR(r.Count(&n, kMinEncodedRuleBytes + 2 * 8));
  std::vector<RankedMcac> ranked;
  ranked.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    RankedMcac entry;
    MARAS_RETURN_IF_ERROR(DecodeMcac(&r, &entry.mcac));
    MARAS_RETURN_IF_ERROR(r.F64(&entry.score));
    ranked.push_back(std::move(entry));
  }
  MARAS_RETURN_IF_ERROR(RequireExhausted(r));
  return ranked;
}

}  // namespace maras::core
