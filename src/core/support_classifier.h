#ifndef MARAS_CORE_SUPPORT_CLASSIFIER_H_
#define MARAS_CORE_SUPPORT_CLASSIFIER_H_

#include <cstddef>

#include "mining/itemset.h"
#include "mining/transaction_db.h"

namespace maras::core {

// The three association types of Section 3.3.
//
// A note on Definition 3.3.2 ("implicitly supported": two reports whose
// intersection is exactly A ∪ B). The paper's Lemma 3.4.2 proof actually
// establishes the slightly weaker property that a closed itemset is either a
// whole report (explicit) or is pinned down by multiple reports jointly —
// i.e. the intersection of ALL reports containing S equals S (closure
// equality). The literal two-report version does not follow from closedness
// (three reports can pin S down pairwise-ambiguously), so MARAS uses the
// closure interpretation operationally and exposes the strict pairwise
// witness check separately for analysis.
enum class SupportKind {
  // Def 3.3.1: some report's complete item content equals A ∪ B exactly.
  kExplicit,
  // Closure interpretation of Def 3.3.2: ≥ 2 reports contain A ∪ B and
  // their overall intersection is exactly A ∪ B (no exact-match report).
  kImplicit,
  // Neither — a partial (type-3) association conveying misleading
  // information; MARAS discards these.
  kUnsupported,
  // The itemset occurs in no report at all.
  kAbsent,
};

const char* SupportKindName(SupportKind kind);

// Classifies the complete itemset of a rule against the report database in
// O(|tidlist(S)| · max|t|).
SupportKind ClassifySupport(const mining::TransactionDatabase& db,
                            const mining::Itemset& complete_itemset);

// Lemma 3.4.2 in executable form: closed ⟹ supported. True when
// ClassifySupport returns kExplicit or kImplicit.
bool IsSupported(const mining::TransactionDatabase& db,
                 const mining::Itemset& complete_itemset);

// Strict pairwise Def 3.3.2: do two reports t1, t2 exist with
// (t1.D ∪ t1.A) ∩ (t2.D ∪ t2.A) ≡ S? Quadratic in |tidlist(S)|; intended
// for tests and diagnostics, not the mining path.
bool HasPairwiseWitness(const mining::TransactionDatabase& db,
                        const mining::Itemset& complete_itemset);

}  // namespace maras::core

#endif  // MARAS_CORE_SUPPORT_CLASSIFIER_H_
