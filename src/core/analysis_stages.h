#ifndef MARAS_CORE_ANALYSIS_STAGES_H_
#define MARAS_CORE_ANALYSIS_STAGES_H_

#include <vector>

#include "core/checkpoint.h"

namespace maras::core {

// ---------------------------------------------------------------------------
// The post-mining analysis stages of RunAnalyzed, extracted as free
// functions so every execution mode — single-process, resumed-from-
// checkpoint, and the multi-process shard supervisor — runs the *same*
// code on the merged corpus. Byte-identity across modes then holds by
// construction: once the frequent family entering BuildClosedStage is
// equal, every downstream artifact is equal.
//
// Each function is deterministic for fixed inputs at any thread count
// (fan-outs write disjoint slots and reduce in input order) and polls
// `ctx` cooperatively like the rest of the pipeline.
// ---------------------------------------------------------------------------

// Stage 2 tail: turns a completed (possibly degraded) mine into the closed
// stage snapshot — rule-space statistics over the pre-filter family, then
// the closed-set filter. Consumes `mined` (the frequent family is only
// needed transiently).
maras::StatusOr<ClosedCheckpoint> BuildClosedStage(
    GovernedMineResult mined, const mining::ItemDictionary& items,
    const AnalyzerOptions& analyzer, const RunContext& ctx);

// Stage 3: multi-drug target rule generation from the closed family.
maras::StatusOr<std::vector<DrugAdrRule>> BuildRulesStage(
    const mining::FrequentItemsetResult& closed,
    const mining::ItemDictionary& items,
    const mining::TransactionDatabase& db, const AnalyzerOptions& analyzer,
    const RunContext& ctx);

// True when the lattice-backed MCAC path is both requested and exact for
// these options (see AnalyzerOptions::lattice_mcac). Callers skip
// BuildLatticeStage entirely when this is false.
bool LatticeMcacEligible(const AnalyzerOptions& analyzer);

// Stage 3.5: the concept lattice over the closed family — node arenas plus
// covering edges, built in parallel, a pure function of `closed`.
maras::StatusOr<mining::ConceptLattice> BuildLatticeStage(
    const mining::FrequentItemsetResult& closed,
    const AnalyzerOptions& analyzer, const RunContext& ctx);

// Stage 4: MCAC construction + contextual ranking for the target rules.
// With a non-null `lattice`, subset supports resolve as memoized lattice
// walks (shared SubsetSupportCache across the fan-out); bytes are identical
// to the nullptr enumeration path.
maras::StatusOr<std::vector<RankedMcac>> BuildRankedStage(
    const std::vector<DrugAdrRule>& rules,
    const mining::ItemDictionary& items,
    const mining::TransactionDatabase& db, RankingMethod method,
    const AnalyzerOptions& analyzer, const RunContext& ctx,
    const mining::ConceptLattice* lattice = nullptr);

}  // namespace maras::core

#endif  // MARAS_CORE_ANALYSIS_STAGES_H_
