#include "serve/query_engine.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/status.h"

namespace maras::serve {

maras::StatusOr<QueryEngine> QueryEngine::Create(
    std::shared_ptr<const SignalSnapshot> snapshot) {
  if (snapshot == nullptr) {
    return maras::Status::InvalidArgument("query engine needs a snapshot");
  }
  QueryEngine engine(std::move(snapshot));
  const uint32_t items = engine.snapshot_->counts().items;
  engine.item_index_.reserve(items);
  for (uint32_t i = 0; i < items; ++i) {
    std::string_view name;
    MARAS_RETURN_IF_ERROR(engine.snapshot_->ItemName(i, &name));
    engine.item_index_.emplace(name, i);
  }
  return engine;
}

std::vector<uint32_t> QueryEngine::TopK(uint32_t k) const {
  const uint32_t n = std::min(k, snapshot_->counts().signals);
  std::vector<uint32_t> out(n);
  for (uint32_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

maras::StatusOr<uint32_t> QueryEngine::FindItem(std::string_view name) const {
  const auto it = item_index_.find(name);
  if (it == item_index_.end()) {
    return maras::Status::NotFound("unknown item '" + std::string(name) + "'");
  }
  return it->second;
}

maras::StatusOr<std::vector<uint32_t>> QueryEngine::SignalsForItem(
    std::string_view name, mining::ItemDomain side) const {
  MARAS_ASSIGN_OR_RETURN(uint32_t item, FindItem(name));
  std::vector<uint32_t> out;
  MARAS_RETURN_IF_ERROR(snapshot_->Postings(side, item, &out));
  return out;
}

maras::StatusOr<std::vector<uint32_t>> QueryEngine::SignalsForDrug(
    std::string_view name) const {
  return SignalsForItem(name, mining::ItemDomain::kDrug);
}

maras::StatusOr<std::vector<uint32_t>> QueryEngine::SignalsForAdr(
    std::string_view name) const {
  return SignalsForItem(name, mining::ItemDomain::kAdr);
}

maras::StatusOr<std::vector<uint64_t>> QueryEngine::SupportingReportIds(
    uint32_t signal) const {
  std::vector<uint64_t> out;
  MARAS_RETURN_IF_ERROR(snapshot_->ReportIds(signal, &out));
  return out;
}

maras::StatusOr<std::vector<uint32_t>> QueryEngine::Generalize(
    uint32_t signal) const {
  std::vector<uint32_t> out;
  MARAS_RETURN_IF_ERROR(snapshot_->Generalizations(signal, &out));
  return out;
}

maras::StatusOr<std::vector<uint32_t>> QueryEngine::Specialize(
    uint32_t signal) const {
  std::vector<uint32_t> out;
  MARAS_RETURN_IF_ERROR(snapshot_->Specializations(signal, &out));
  return out;
}

maras::StatusOr<core::RankedMcac> QueryEngine::Materialize(
    uint32_t signal) const {
  return snapshot_->Materialize(signal);
}

}  // namespace maras::serve
