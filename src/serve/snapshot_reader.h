#ifndef MARAS_SERVE_SNAPSHOT_READER_H_
#define MARAS_SERVE_SNAPSHOT_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/analyzer.h"
#include "core/ranking.h"
#include "serve/bounded_view.h"
#include "serve/mapped_file.h"
#include "serve/snapshot_format.h"
#include "util/statusor.h"

namespace maras::serve {

// The u32 counts of the kMeta section. `lattice_nav` doubles as the
// lattice-presence flag: equal to `signals` when the writer emitted
// navigation, 0 when it did not.
struct SnapshotCounts {
  uint32_t signals = 0;
  uint32_t items = 0;
  uint32_t rules = 0;
  uint32_t levels = 0;
  uint32_t item_ids = 0;
  uint32_t postings = 0;
  uint32_t report_ids = 0;
  uint32_t string_bytes = 0;
  uint32_t lattice_nav = 0;
  uint32_t lattice_edges = 0;
};

// Decoded kSignals record (indices into sibling sections; see
// snapshot_format.h).
struct SignalRecord {
  uint32_t target_rule = 0;
  uint32_t first_level = 0;
  uint32_t level_count = 0;
  uint32_t report_offset = 0;
  uint32_t report_count = 0;
  double score = 0.0;
};

// Decoded kLevels record.
struct LevelRecord {
  uint32_t first_rule = 0;
  uint32_t rule_count = 0;
};

// A fully validated, memory-mapped (or in-memory) signal snapshot.
//
// Every byte of the backing file is treated as hostile until Open/From*
// has finished: framing (magic, version, section table, per-section FNV-1a
// checksums), geometry (counts × record sizes == section sizes) and
// semantics (cumulative pool offsets, index ranges, item domains, canonical
// posting derivation) are all verified eagerly, through BoundedView only,
// before the factory returns. A truncated, torn, bit-flipped or forged
// image yields a structured Corruption status — never a crash, never a
// partially usable object.
//
// After validation the accessors below still bounds-check (hostile *query*
// indices return InvalidArgument), but can no longer fail on the bytes
// themselves.
class SignalSnapshot {
 public:
  // Memory-maps and validates `path`.
  static maras::StatusOr<SignalSnapshot> OpenFile(const std::string& path);

  // Validates an owned in-memory image (tests, re-encode round-trips).
  static maras::StatusOr<SignalSnapshot> FromBytes(std::string bytes);

  // Validates a borrowed image; `bytes` must outlive the snapshot. This is
  // the fuzz entry point — no copy, no file.
  static maras::StatusOr<SignalSnapshot> FromView(std::string_view bytes);

  const SnapshotCounts& counts() const { return counts_; }
  const core::RuleSpaceStats& stats() const { return stats_; }

  // Item accessors. `item` must be < counts().items.
  maras::Status ItemName(uint32_t item, std::string_view* name) const;
  maras::Status Domain(uint32_t item, mining::ItemDomain* domain) const;

  // Record accessors by index.
  maras::Status Signal(uint32_t index, SignalRecord* out) const;
  maras::Status Level(uint32_t index, LevelRecord* out) const;
  maras::Status Rule(uint32_t index, core::DrugAdrRule* out) const;

  // Supporting report ids of one signal (drill-down), in stored order.
  maras::Status ReportIds(uint32_t signal, std::vector<uint64_t>* out) const;

  // Ascending signal indices whose target mentions `item` on `side`.
  maras::Status Postings(mining::ItemDomain side, uint32_t item,
                         std::vector<uint32_t>* out) const;

  // True when the snapshot carries lattice navigation (writer-side
  // include_lattice and at least one signal).
  bool has_lattice_nav() const { return counts_.lattice_nav != 0; }

  // Ascending signal indices one covering step up (same ADRs, maximal
  // proper-subset drug set) or down the concept lattice from `signal`.
  // NotFound when the snapshot has no lattice navigation.
  maras::Status Generalizations(uint32_t signal,
                                std::vector<uint32_t>* out) const;
  maras::Status Specializations(uint32_t signal,
                                std::vector<uint32_t>* out) const;

  // Reconstructs signal `index` as the analyzer-side value type.
  maras::StatusOr<core::RankedMcac> Materialize(uint32_t index) const;

 private:
  SignalSnapshot() = default;

  // Runs the whole validation pipeline over `file` and fills the cached
  // section views/counts on success.
  maras::Status Init(BoundedView file);

  maras::Status ValidateItems() const;
  maras::Status ValidateRules() const;
  maras::Status ValidateSignals() const;
  maras::Status ValidatePostings() const;
  maras::Status ValidateLattice() const;

  // Shared body of Generalizations/Specializations; `spec` picks the list.
  maras::Status LatticeList(uint32_t signal, bool spec,
                            std::vector<uint32_t>* out) const;

  // Backing storage; exactly one is active (both empty for FromView).
  MappedFile mapped_;
  std::unique_ptr<std::string> owned_;

  // Heap/mmap addresses are stable under move, so the views stay valid when
  // the snapshot moves out of its factory.
  BoundedView sections_[kSectionCount];
  SnapshotCounts counts_;
  core::RuleSpaceStats stats_;
};

// The writer-side inputs of a snapshot, rebuilt from its bytes.
struct ReconstructedInputs {
  mining::ItemDictionary items;
  std::vector<core::RankedMcac> signals;
  core::RuleSpaceStats stats;
  std::vector<std::vector<uint64_t>> report_ids;
  bool include_lattice = true;
};

// Rebuilds everything the writer was given, from the snapshot alone.
// Because the format is canonical, EncodeSignalSnapshot over the result
// reproduces the input image byte-for-byte — the round-trip property the
// fuzz harness and the reader tests enforce.
maras::StatusOr<ReconstructedInputs> ReconstructInputs(
    const SignalSnapshot& snapshot);

}  // namespace maras::serve

#endif  // MARAS_SERVE_SNAPSHOT_READER_H_
