#ifndef MARAS_SERVE_MAPPED_FILE_H_
#define MARAS_SERVE_MAPPED_FILE_H_

#include <string>

#include "serve/bounded_view.h"
#include "util/statusor.h"

namespace maras::serve {

// Read-only memory mapping of a snapshot file. The mapping is private and
// never written through; snapshots are immutable once published (the store
// renames, it never rewrites), so the mapping stays coherent for its whole
// lifetime. Exposes the bytes ONLY as a BoundedView — the raw pointer never
// leaves this class, keeping all interpretation behind the validated
// accessor layer.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  // Maps `path` read-only. An empty file maps to an empty view (mmap of
  // length 0 is unspecified, so it is not attempted).
  static maras::StatusOr<MappedFile> Open(const std::string& path);

  size_t size() const { return size_; }
  BoundedView view() const;

 private:
  void Unmap();

  void* data_ = nullptr;  // nullptr for an empty file
  size_t size_ = 0;
};

}  // namespace maras::serve

#endif  // MARAS_SERVE_MAPPED_FILE_H_
