#include "serve/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace maras::serve {

MappedFile::~MappedFile() { Unmap(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Unmap();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MappedFile::Unmap() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
  }
  size_ = 0;
}

maras::StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    const int err = errno;
    if (err == ENOENT) {
      return maras::Status::NotFound("no such snapshot file: " + path);
    }
    return maras::Status::IOError("cannot open " + path + ": " +
                                  std::strerror(err));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return maras::Status::IOError("cannot stat " + path + ": " +
                                  std::strerror(err));
  }
  MappedFile mapped;
  mapped.size_ = static_cast<size_t>(st.st_size);
  if (mapped.size_ > 0) {
    void* data = ::mmap(nullptr, mapped.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (data == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return maras::Status::IOError("cannot mmap " + path + ": " +
                                    std::strerror(err));
    }
    mapped.data_ = data;
  }
  ::close(fd);
  return mapped;
}

BoundedView MappedFile::view() const {
  // The single point where the mapping becomes typed bytes; everything past
  // this line is bounds-checked by BoundedView.
  return BoundedView(static_cast<const char*>(data_), size_);
}

}  // namespace maras::serve
