#ifndef MARAS_SERVE_QUERY_ENGINE_H_
#define MARAS_SERVE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/ranking.h"
#include "serve/snapshot_reader.h"
#include "util/statusor.h"

namespace maras::serve {

// Read-side API over one validated snapshot. The engine pins its snapshot
// through the shared_ptr, so queries stay valid while the SnapshotStore
// swings to newer generations underneath.
//
// Answers are definitionally byte-identical to querying the analyzer output
// the snapshot was built from: signals are stored in rank order (top-k is a
// prefix), postings are the exact derivation from the target rules, and
// Materialize rebuilds the analyzer's own value types bit-for-bit (supports,
// confidences and scores round-trip as raw IEEE-754).
class QueryEngine {
 public:
  // Builds the name→item index (names borrow from the snapshot).
  static maras::StatusOr<QueryEngine> Create(
      std::shared_ptr<const SignalSnapshot> snapshot);

  const SignalSnapshot& snapshot() const { return *snapshot_; }

  // The first min(k, signal_count) signal indices — rank order is storage
  // order.
  std::vector<uint32_t> TopK(uint32_t k) const;

  // Item id of `name`, or NotFound.
  maras::StatusOr<uint32_t> FindItem(std::string_view name) const;

  // Ascending indices of the signals whose target mentions `name` as a
  // drug / an ADR. NotFound for an unknown name; a known name of the other
  // domain simply has no postings on this side and yields an empty list.
  maras::StatusOr<std::vector<uint32_t>> SignalsForDrug(
      std::string_view name) const;
  maras::StatusOr<std::vector<uint32_t>> SignalsForAdr(
      std::string_view name) const;

  // Drill-down: primary ids of the reports supporting `signal`'s target.
  maras::StatusOr<std::vector<uint64_t>> SupportingReportIds(
      uint32_t signal) const;

  // Lattice drill-down: signals one covering step up (fewer drugs, same
  // ADRs) or down from `signal`, in ascending index order. NotFound when
  // the snapshot was written without lattice navigation.
  maras::StatusOr<std::vector<uint32_t>> Generalize(uint32_t signal) const;
  maras::StatusOr<std::vector<uint32_t>> Specialize(uint32_t signal) const;

  // True when the pinned snapshot carries lattice navigation.
  bool HasLatticeNav() const { return snapshot_->has_lattice_nav(); }

  // Full analyzer-side reconstruction of one signal.
  maras::StatusOr<core::RankedMcac> Materialize(uint32_t signal) const;

 private:
  explicit QueryEngine(std::shared_ptr<const SignalSnapshot> snapshot)
      : snapshot_(std::move(snapshot)) {}

  maras::StatusOr<std::vector<uint32_t>> SignalsForItem(
      std::string_view name, mining::ItemDomain side) const;

  std::shared_ptr<const SignalSnapshot> snapshot_;
  // Keys view into the snapshot's string section; the shared_ptr above
  // keeps them alive.
  std::unordered_map<std::string_view, uint32_t> item_index_;
};

}  // namespace maras::serve

#endif  // MARAS_SERVE_QUERY_ENGINE_H_
