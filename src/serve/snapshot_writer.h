#ifndef MARAS_SERVE_SNAPSHOT_WRITER_H_
#define MARAS_SERVE_SNAPSHOT_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "core/ranking.h"
#include "mining/item_dictionary.h"
#include "mining/transaction_db.h"
#include "util/statusor.h"

namespace maras::serve {

// Everything a snapshot captures from one analysis run. `items` and
// `signals` are required; supporting report ids come from exactly one of
// two sources:
//   - `db` + `primary_ids`: computed per target via SupportingReports (the
//     normal build-from-analyzer path), or
//   - `report_ids`: one precomputed list per signal (the re-encode path —
//     a reader can reconstruct its own inputs without the database).
struct SnapshotInputs {
  const mining::ItemDictionary* items = nullptr;
  const std::vector<core::RankedMcac>* signals = nullptr;
  core::RuleSpaceStats stats;

  const mining::TransactionDatabase* db = nullptr;
  const std::vector<uint64_t>* primary_ids = nullptr;

  const std::vector<std::vector<uint64_t>>* report_ids = nullptr;

  // When true (the default) the writer derives the lattice-navigation
  // sections — per-signal generalize/specialize covering edges — from the
  // signal targets. When false those sections are emitted empty and the
  // meta lattice counts are zero; readers report has_lattice_nav() = false.
  bool include_lattice = true;
};

// Encodes the one canonical snapshot image for `inputs` (see
// snapshot_format.h). Inputs that cannot be represented — item ids outside
// the dictionary, domain-inconsistent rules, or anything overflowing the
// 32-bit arena — are InvalidArgument: the writer refuses to emit any file
// the reader would reject.
maras::StatusOr<std::string> EncodeSignalSnapshot(const SnapshotInputs& inputs);

// Encodes and publishes to `path` via the checksummed tmp+fsync+rename
// helper, so a crash mid-write can tear at most a temp file, never `path`.
maras::Status WriteSnapshotFile(const std::string& path,
                                const SnapshotInputs& inputs);

}  // namespace maras::serve

#endif  // MARAS_SERVE_SNAPSHOT_WRITER_H_
