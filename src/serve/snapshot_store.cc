#include "serve/snapshot_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string_view>
#include <utility>

#include "util/delimited.h"
#include "util/status.h"

namespace maras::serve {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kCurrentFile = "CURRENT";

// Accepts "snapshot-<digits>.msnp" and nothing else; in particular a
// ".quarantined" suffix disqualifies a file from ever being a candidate
// again.
bool ParseGeneration(std::string_view name, uint64_t* generation) {
  constexpr std::string_view prefix = "snapshot-";
  constexpr std::string_view suffix = ".msnp";
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.substr(0, prefix.size()) != prefix) return false;
  if (name.substr(name.size() - suffix.size()) != suffix) return false;
  const std::string_view digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.size() > 19) return false;  // cannot overflow u64 below
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *generation = value;
  return true;
}

}  // namespace

std::string SnapshotStore::GenerationFileName(uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "snapshot-%06llu.msnp",
                static_cast<unsigned long long>(generation));
  return buf;
}

maras::StatusOr<std::vector<uint64_t>> SnapshotStore::ListGenerations() const {
  std::error_code ec;
  fs::directory_iterator it(options_.dir, ec);
  if (ec) {
    return maras::Status::IOError("cannot list snapshot directory " +
                                  options_.dir + ": " + ec.message());
  }
  std::vector<uint64_t> generations;
  for (const fs::directory_iterator end; it != end; it.increment(ec)) {
    if (ec) {
      return maras::Status::IOError("cannot list snapshot directory " +
                                    options_.dir + ": " + ec.message());
    }
    uint64_t generation = 0;
    if (ParseGeneration(it->path().filename().string(), &generation)) {
      generations.push_back(generation);
    }
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

bool SnapshotStore::RunHook(std::string_view stage) const {
  return !options_.stage_hook || options_.stage_hook(stage);
}

void SnapshotStore::AddDiagnostic(std::string message) {
  WriterMutexLock lock(&mutex_);
  diagnostics_.push_back(std::move(message));
}

void SnapshotStore::Quarantine(const std::string& file_name) {
  std::error_code ec;
  fs::rename(fs::path(options_.dir) / file_name,
             fs::path(options_.dir) / (file_name + ".quarantined"), ec);
  if (ec) {
    AddDiagnostic("cannot quarantine " + file_name + ": " + ec.message());
  } else {
    AddDiagnostic("quarantined " + file_name);
  }
}

maras::StatusOr<SnapshotStore::Resolved> SnapshotStore::Resolve() {
  MARAS_ASSIGN_OR_RETURN(std::vector<uint64_t> generations, ListGenerations());

  // The CURRENT target is the committed generation and gets first shot;
  // the descending scan behind it is the fallback ladder.
  uint64_t current_generation = 0;
  bool have_current = false;
  maras::StatusOr<std::string> current = maras::ReadFileToString(
      options_.dir + "/" + std::string(kCurrentFile));
  if (current.ok()) {
    if (ParseGeneration(*current, &current_generation)) {
      have_current = true;
    } else {
      AddDiagnostic("CURRENT names an unparseable generation: '" + *current +
                    "'");
    }
  } else if (!current.status().IsNotFound()) {
    AddDiagnostic("cannot read CURRENT: " + current.status().ToString());
  }

  std::vector<uint64_t> order;
  order.reserve(generations.size() + 1);
  if (have_current) order.push_back(current_generation);
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    if (!have_current || *it != current_generation) order.push_back(*it);
  }

  for (uint64_t generation : order) {
    const std::string name = GenerationFileName(generation);
    maras::StatusOr<SignalSnapshot> snapshot =
        SignalSnapshot::OpenFile(options_.dir + "/" + name);
    if (snapshot.ok()) {
      Resolved resolved;
      resolved.snapshot = std::make_shared<const SignalSnapshot>(
          std::move(snapshot).value());
      resolved.generation = generation;
      return resolved;
    }
    AddDiagnostic("generation " + std::to_string(generation) +
                  " rejected: " + snapshot.status().ToString());
    // A dangling CURRENT (file vanished) has nothing to quarantine.
    if (options_.quarantine && !snapshot.status().IsNotFound()) {
      Quarantine(name);
    }
  }
  return maras::Status::NotFound("no valid snapshot generation in " +
                                 options_.dir);
}

maras::Status SnapshotStore::Refresh() {
  // Resolution does file IO and takes the lock only to log/swap, so readers
  // calling Acquire are never blocked behind validation of a new file.
  MARAS_ASSIGN_OR_RETURN(Resolved resolved, Resolve());
  WriterMutexLock lock(&mutex_);
  current_ = std::move(resolved.snapshot);
  generation_ = resolved.generation;
  return maras::Status::OK();
}

maras::StatusOr<std::shared_ptr<const SignalSnapshot>>
SnapshotStore::Acquire() {
  {
    ReaderMutexLock lock(&mutex_);
    if (current_ != nullptr) return current_;
  }
  MARAS_RETURN_IF_ERROR(Refresh());
  ReaderMutexLock lock(&mutex_);
  return current_;
}

uint64_t SnapshotStore::current_generation() const {
  ReaderMutexLock lock(&mutex_);
  return generation_;
}

std::vector<std::string> SnapshotStore::diagnostics() const {
  ReaderMutexLock lock(&mutex_);
  return diagnostics_;
}

maras::Status SnapshotStore::Publish(const SnapshotInputs& inputs) {
  // One publisher at a time, held across generation selection, both file
  // writes, and the final Refresh. Without this, two concurrent publishers
  // can read the same ListGenerations result, pick the same next number,
  // and the second AtomicWrite silently replaces the first publisher's
  // snapshot under a name CURRENT already commits to.
  MutexLock publish(&publish_mu_);
  MARAS_ASSIGN_OR_RETURN(std::string bytes, EncodeSignalSnapshot(inputs));
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    return maras::Status::IOError("cannot create snapshot directory " +
                                  options_.dir + ": " + ec.message());
  }
  MARAS_ASSIGN_OR_RETURN(std::vector<uint64_t> generations, ListGenerations());
  const uint64_t next = generations.empty() ? 1 : generations.back() + 1;
  const std::string name = GenerationFileName(next);

  // Each hook site is a crash point a test can trigger; a false return
  // stops Publish with whatever the directory holds at that instant — no
  // cleanup, exactly like a kill.
  if (!RunHook("publish.pre-snapshot-write")) {
    return maras::Status::Cancelled(
        "simulated crash at publish.pre-snapshot-write");
  }
  MARAS_RETURN_IF_ERROR_CTX(
      maras::AtomicWriteStringToFile(options_.dir + "/" + name, bytes),
      "writing generation " + std::to_string(next));
  if (!RunHook("publish.post-snapshot-write")) {
    return maras::Status::Cancelled(
        "simulated crash at publish.post-snapshot-write");
  }
  if (!RunHook("publish.pre-current-write")) {
    return maras::Status::Cancelled(
        "simulated crash at publish.pre-current-write");
  }
  MARAS_RETURN_IF_ERROR_CTX(
      maras::AtomicWriteStringToFile(
          options_.dir + "/" + std::string(kCurrentFile), name),
      "committing generation " + std::to_string(next));
  if (!RunHook("publish.post-current-write")) {
    return maras::Status::Cancelled(
        "simulated crash at publish.post-current-write");
  }
  return Refresh();
}

}  // namespace maras::serve
