#ifndef MARAS_SERVE_BOUNDED_VIEW_H_
#define MARAS_SERVE_BOUNDED_VIEW_H_

#include <cstdint>
#include <cstring>
#include <string_view>

#include "util/status.h"

namespace maras::serve {

// ---------------------------------------------------------------------------
// The ONLY sanctioned byte-access layer of the serving path. A mapped
// snapshot is hostile input: every read of it must be bounds-checked before
// any byte is interpreted, and no pointer derived from the mapping may
// escape this class. The rest of src/serve/ reads snapshot bytes exclusively
// through these Status-returning accessors — the serve-validated-access lint
// rule bans reinterpret_cast, memcpy and data()-pointer arithmetic
// everywhere else under src/serve/, so this file is the complete audit
// surface for "can a forged offset read out of bounds".
//
// All multi-byte reads are little-endian fixed-width memcpys (the
// util/binary_io.h convention), so accessors are alignment-safe on any
// offset — a forged unaligned offset is a validation failure at worst,
// never UB.
// ---------------------------------------------------------------------------

class BoundedView {
 public:
  BoundedView() = default;
  BoundedView(const char* data, size_t size) : data_(data), size_(size) {}

  static BoundedView Of(std::string_view bytes) {
    return BoundedView(bytes.data(), bytes.size());
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Status U8At(size_t offset, uint8_t* v) const {
    MARAS_RETURN_IF_ERROR(Need(offset, 1));
    std::memcpy(v, data_ + offset, 1);
    return Status::OK();
  }
  Status U32At(size_t offset, uint32_t* v) const {
    MARAS_RETURN_IF_ERROR(Need(offset, sizeof(*v)));
    std::memcpy(v, data_ + offset, sizeof(*v));
    return Status::OK();
  }
  Status U64At(size_t offset, uint64_t* v) const {
    MARAS_RETURN_IF_ERROR(Need(offset, sizeof(*v)));
    std::memcpy(v, data_ + offset, sizeof(*v));
    return Status::OK();
  }
  Status F64At(size_t offset, double* v) const {
    uint64_t bits = 0;
    MARAS_RETURN_IF_ERROR(U64At(offset, &bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::OK();
  }

  // Borrowing byte-range view; valid only while the backing storage lives.
  Status BytesAt(size_t offset, size_t length, std::string_view* out) const {
    MARAS_RETURN_IF_ERROR(Need(offset, length));
    *out = std::string_view(data_ + offset, length);
    return Status::OK();
  }

  // Sub-view of [offset, offset + length) — how section payloads are carved
  // out of the file view so per-section accessors cannot stray outside
  // their section even with a forged in-section offset.
  Status Slice(size_t offset, size_t length, BoundedView* out) const {
    MARAS_RETURN_IF_ERROR(Need(offset, length));
    *out = BoundedView(data_ + offset, length);
    return Status::OK();
  }

 private:
  // Overflow-proof: compares against the space left, never offset + n.
  Status Need(size_t offset, size_t n) const {
    if (offset > size_ || n > size_ - offset) {
      return Status::Corruption(
          "out-of-bounds read: need " + std::to_string(n) + " bytes at " +
          std::to_string(offset) + ", view holds " + std::to_string(size_));
    }
    return Status::OK();
  }

  const char* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace maras::serve

#endif  // MARAS_SERVE_BOUNDED_VIEW_H_
