#include "serve/snapshot_writer.h"

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "serve/snapshot_format.h"
#include "util/binary_io.h"
#include "util/delimited.h"
#include "util/status.h"

namespace maras::serve {
namespace {

maras::Status FitsU32(uint64_t v, const char* what) {
  if (v > std::numeric_limits<uint32_t>::max()) {
    return maras::Status::InvalidArgument(
        std::string(what) + " overflows the 32-bit snapshot arena: " +
        std::to_string(v));
  }
  return maras::Status::OK();
}

// Writer-side hygiene: never emit a rule the reader's semantic validation
// would reject. Ids must be interned, itemsets strictly increasing, and
// every id's domain must match the side of the rule it sits on.
maras::Status ValidateItemset(const mining::Itemset& set,
                              mining::ItemDomain domain,
                              const mining::ItemDictionary& items,
                              const char* side) {
  uint64_t prev = 0;
  bool first = true;
  for (mining::ItemId id : set) {
    if (id >= items.size()) {
      return maras::Status::InvalidArgument(
          std::string(side) + " item id " + std::to_string(id) +
          " outside dictionary of " + std::to_string(items.size()));
    }
    if (!first && id <= prev) {
      return maras::Status::InvalidArgument(
          std::string(side) + " itemset not strictly increasing");
    }
    if (items.Domain(id) != domain) {
      return maras::Status::InvalidArgument(
          std::string(side) + " item '" + items.Name(id) +
          "' has the wrong domain");
    }
    prev = id;
    first = false;
  }
  return maras::Status::OK();
}

maras::Status ValidateRule(const core::DrugAdrRule& rule,
                           const mining::ItemDictionary& items) {
  if (rule.drugs.empty() || rule.adrs.empty()) {
    return maras::Status::InvalidArgument(
        "a drug-ADR rule needs a non-empty antecedent and consequent");
  }
  MARAS_RETURN_IF_ERROR(
      ValidateItemset(rule.drugs, mining::ItemDomain::kDrug, items, "drugs"));
  MARAS_RETURN_IF_ERROR(
      ValidateItemset(rule.adrs, mining::ItemDomain::kAdr, items, "adrs"));
  return maras::Status::OK();
}

// Emits one 56-byte rule record, appending its itemsets to the id pool.
void EncodeRuleRecord(const core::DrugAdrRule& rule, BinaryWriter* rules,
                      BinaryWriter* id_pool, uint64_t* id_cursor) {
  rules->U32(static_cast<uint32_t>(*id_cursor));
  rules->U32(static_cast<uint32_t>(rule.drugs.size()));
  for (mining::ItemId id : rule.drugs) id_pool->U32(id);
  *id_cursor += rule.drugs.size();
  rules->U32(static_cast<uint32_t>(*id_cursor));
  rules->U32(static_cast<uint32_t>(rule.adrs.size()));
  for (mining::ItemId id : rule.adrs) id_pool->U32(id);
  *id_cursor += rule.adrs.size();
  rules->U64(rule.support);
  rules->U64(rule.antecedent_support);
  rules->U64(rule.consequent_support);
  rules->F64(rule.confidence);
  rules->F64(rule.lift);
}

// True iff `a` is a proper subset of `b`; both strictly increasing.
bool IsProperSubset(const mining::Itemset& a, const mining::Itemset& b) {
  if (a.size() >= b.size()) return false;
  size_t j = 0;
  for (mining::ItemId id : a) {
    while (j < b.size() && b[j] < id) ++j;
    if (j == b.size() || b[j] != id) return false;
    ++j;
  }
  return true;
}

// Derives the per-signal generalization lists (one covering step up the
// concept lattice restricted to the stored signals): t generalizes s iff
// both target the same ADR set, t's drug set is a proper subset of s's, and
// no third same-ADR signal sits strictly between them. Pure function of the
// signal targets — the reader re-derives it to validate the stored lists.
std::vector<std::vector<uint32_t>> DeriveGeneralizations(
    const std::vector<core::RankedMcac>& signals) {
  // Group by ADR set so the quadratic cover scan only sees same-consequent
  // candidates.
  std::vector<uint32_t> order(signals.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const mining::Itemset& la = signals[a].mcac.target.adrs;
    const mining::Itemset& lb = signals[b].mcac.target.adrs;
    if (la != lb) return la < lb;
    return a < b;
  });
  std::vector<std::vector<uint32_t>> gen(signals.size());
  size_t group_begin = 0;
  while (group_begin < order.size()) {
    size_t group_end = group_begin + 1;
    while (group_end < order.size() &&
           signals[order[group_end]].mcac.target.adrs ==
               signals[order[group_begin]].mcac.target.adrs) {
      ++group_end;
    }
    for (size_t i = group_begin; i < group_end; ++i) {
      const uint32_t s = order[i];
      const mining::Itemset& drugs_s = signals[s].mcac.target.drugs;
      std::vector<uint32_t> below;
      for (size_t j = group_begin; j < group_end; ++j) {
        const uint32_t t = order[j];
        if (t == s) continue;
        if (IsProperSubset(signals[t].mcac.target.drugs, drugs_s)) {
          below.push_back(t);
        }
      }
      for (uint32_t t : below) {
        bool maximal = true;
        for (uint32_t u : below) {
          if (u != t && IsProperSubset(signals[t].mcac.target.drugs,
                                       signals[u].mcac.target.drugs)) {
            maximal = false;
            break;
          }
        }
        if (maximal) gen[s].push_back(t);
      }
      std::sort(gen[s].begin(), gen[s].end());
    }
    group_begin = group_end;
  }
  return gen;
}

void EncodePostingSide(const std::vector<std::vector<uint32_t>>& lists,
                       BinaryWriter* side, BinaryWriter* pool,
                       uint64_t* pool_cursor) {
  for (const std::vector<uint32_t>& list : lists) {
    side->U32(static_cast<uint32_t>(*pool_cursor));
    side->U32(static_cast<uint32_t>(list.size()));
    for (uint32_t signal : list) pool->U32(signal);
    *pool_cursor += list.size();
  }
}

}  // namespace

maras::StatusOr<std::string> EncodeSignalSnapshot(
    const SnapshotInputs& inputs) {
  if (inputs.items == nullptr || inputs.signals == nullptr) {
    return maras::Status::InvalidArgument(
        "snapshot inputs need an item dictionary and a signal list");
  }
  const mining::ItemDictionary& items = *inputs.items;
  const std::vector<core::RankedMcac>& signals = *inputs.signals;

  const bool have_db =
      inputs.db != nullptr && inputs.primary_ids != nullptr;
  const bool have_precomputed = inputs.report_ids != nullptr;
  if (have_db == have_precomputed) {
    return maras::Status::InvalidArgument(
        "snapshot inputs need exactly one report-id source: db+primary_ids "
        "or precomputed per-signal lists");
  }
  if (have_precomputed && inputs.report_ids->size() != signals.size()) {
    return maras::Status::InvalidArgument(
        "precomputed report-id lists (" +
        std::to_string(inputs.report_ids->size()) + ") do not match signals (" +
        std::to_string(signals.size()) + ")");
  }

  MARAS_RETURN_IF_ERROR(FitsU32(items.size(), "item count"));
  MARAS_RETURN_IF_ERROR(FitsU32(signals.size(), "signal count"));

  // --- kStrings + kItems --------------------------------------------------
  std::string strings;
  BinaryWriter items_w;
  for (size_t i = 0; i < items.size(); ++i) {
    const mining::ItemId id = static_cast<mining::ItemId>(i);
    const std::string& name = items.Name(id);
    MARAS_RETURN_IF_ERROR(FitsU32(strings.size(), "string pool offset"));
    MARAS_RETURN_IF_ERROR(FitsU32(name.size(), "item name length"));
    items_w.U32(static_cast<uint32_t>(strings.size()));
    items_w.U32(static_cast<uint32_t>(name.size()));
    items_w.U32(static_cast<uint32_t>(items.Domain(id)));
    strings.append(name);
  }
  MARAS_RETURN_IF_ERROR(FitsU32(strings.size(), "string pool size"));

  // --- kRules / kSignals / kLevels / kItemIdPool / kReportIdPool ----------
  // Rules flatten in the one canonical order: each signal's target first,
  // then its levels front to back, rules within a level in stored order.
  BinaryWriter rules_w;
  BinaryWriter signals_w;
  BinaryWriter levels_w;
  BinaryWriter id_pool_w;
  BinaryWriter report_pool_w;
  uint64_t rule_cursor = 0;
  uint64_t level_cursor = 0;
  uint64_t id_cursor = 0;
  uint64_t report_cursor = 0;
  for (size_t s = 0; s < signals.size(); ++s) {
    const core::Mcac& mcac = signals[s].mcac;
    MARAS_RETURN_IF_ERROR_CTX(ValidateRule(mcac.target, items),
                              "signal " + std::to_string(s));
    const uint64_t target_rule = rule_cursor;
    EncodeRuleRecord(mcac.target, &rules_w, &id_pool_w, &id_cursor);
    ++rule_cursor;

    const uint64_t first_level = level_cursor;
    for (const std::vector<core::DrugAdrRule>& level : mcac.levels) {
      levels_w.U32(static_cast<uint32_t>(rule_cursor));
      levels_w.U32(static_cast<uint32_t>(level.size()));
      for (const core::DrugAdrRule& rule : level) {
        MARAS_RETURN_IF_ERROR_CTX(
            ValidateRule(rule, items),
            "signal " + std::to_string(s) + " context");
        EncodeRuleRecord(rule, &rules_w, &id_pool_w, &id_cursor);
        ++rule_cursor;
      }
    }
    level_cursor += mcac.levels.size();

    std::vector<uint64_t> computed;
    const std::vector<uint64_t>* reports;
    if (have_precomputed) {
      reports = &(*inputs.report_ids)[s];
    } else {
      computed =
          core::SupportingReports(*inputs.db, *inputs.primary_ids, mcac.target);
      reports = &computed;
    }
    signals_w.U32(static_cast<uint32_t>(target_rule));
    signals_w.U32(static_cast<uint32_t>(first_level));
    signals_w.U32(static_cast<uint32_t>(mcac.levels.size()));
    signals_w.U32(static_cast<uint32_t>(report_cursor));
    signals_w.U32(static_cast<uint32_t>(reports->size()));
    signals_w.U32(0);
    signals_w.F64(signals[s].score);
    for (uint64_t id : *reports) report_pool_w.U64(id);
    report_cursor += reports->size();

    MARAS_RETURN_IF_ERROR(FitsU32(rule_cursor, "rule count"));
    MARAS_RETURN_IF_ERROR(FitsU32(level_cursor, "level count"));
    MARAS_RETURN_IF_ERROR(FitsU32(id_cursor, "item-id pool size"));
    MARAS_RETURN_IF_ERROR(FitsU32(report_cursor, "report-id pool size"));
  }

  // --- kDrugPostings / kAdrPostings / kPostingPool ------------------------
  // Postings are pure derivation from the signal targets: signal s appears
  // in the list of every drug in its target antecedent and every ADR in its
  // target consequent. Signals iterate in rank order, so each list is
  // strictly increasing — the canonical form the reader re-derives.
  std::vector<std::vector<uint32_t>> drug_lists(items.size());
  std::vector<std::vector<uint32_t>> adr_lists(items.size());
  for (size_t s = 0; s < signals.size(); ++s) {
    const core::DrugAdrRule& target = signals[s].mcac.target;
    for (mining::ItemId id : target.drugs) {
      drug_lists[id].push_back(static_cast<uint32_t>(s));
    }
    for (mining::ItemId id : target.adrs) {
      adr_lists[id].push_back(static_cast<uint32_t>(s));
    }
  }
  BinaryWriter drug_postings_w;
  BinaryWriter adr_postings_w;
  BinaryWriter posting_pool_w;
  uint64_t posting_cursor = 0;
  EncodePostingSide(drug_lists, &drug_postings_w, &posting_pool_w,
                    &posting_cursor);
  EncodePostingSide(adr_lists, &adr_postings_w, &posting_pool_w,
                    &posting_cursor);
  MARAS_RETURN_IF_ERROR(FitsU32(posting_cursor, "posting pool size"));

  // --- kLatticeNav / kLatticeEdgePool -------------------------------------
  // Pure derivation from the signal targets (like postings): generalization
  // lists by cover computation, specialization lists by inversion. Pool
  // packing is canonical — per signal, gen list then spec list, in signal
  // order — so the reader can re-derive and compare byte-for-byte.
  BinaryWriter lattice_nav_w;
  BinaryWriter lattice_pool_w;
  uint64_t lattice_nav_count = 0;
  uint64_t lattice_edge_cursor = 0;
  if (inputs.include_lattice) {
    const std::vector<std::vector<uint32_t>> gen =
        DeriveGeneralizations(signals);
    std::vector<std::vector<uint32_t>> spec(signals.size());
    for (uint32_t s = 0; s < gen.size(); ++s) {
      for (uint32_t t : gen[s]) spec[t].push_back(s);
    }
    for (size_t s = 0; s < signals.size(); ++s) {
      lattice_nav_w.U32(static_cast<uint32_t>(lattice_edge_cursor));
      lattice_nav_w.U32(static_cast<uint32_t>(gen[s].size()));
      for (uint32_t t : gen[s]) lattice_pool_w.U32(t);
      lattice_edge_cursor += gen[s].size();
      lattice_nav_w.U32(static_cast<uint32_t>(lattice_edge_cursor));
      lattice_nav_w.U32(static_cast<uint32_t>(spec[s].size()));
      for (uint32_t t : spec[s]) lattice_pool_w.U32(t);
      lattice_edge_cursor += spec[s].size();
    }
    lattice_nav_count = signals.size();
    MARAS_RETURN_IF_ERROR(
        FitsU32(lattice_edge_cursor, "lattice edge pool size"));
  }

  // --- kMeta --------------------------------------------------------------
  BinaryWriter meta_w;
  meta_w.U32(static_cast<uint32_t>(signals.size()));
  meta_w.U32(static_cast<uint32_t>(items.size()));
  meta_w.U32(static_cast<uint32_t>(rule_cursor));
  meta_w.U32(static_cast<uint32_t>(level_cursor));
  meta_w.U32(static_cast<uint32_t>(id_cursor));
  meta_w.U32(static_cast<uint32_t>(posting_cursor));
  meta_w.U32(static_cast<uint32_t>(report_cursor));
  meta_w.U32(static_cast<uint32_t>(strings.size()));
  meta_w.U64(inputs.stats.total_rules);
  meta_w.U64(inputs.stats.filtered_rules);
  meta_w.U64(inputs.stats.closed_mixed);
  meta_w.U64(inputs.stats.mcac_count);
  meta_w.U32(static_cast<uint32_t>(lattice_nav_count));
  meta_w.U32(static_cast<uint32_t>(lattice_edge_cursor));

  // --- Assemble: header, table, payloads in kSectionOrder -----------------
  std::string payloads[kSectionCount] = {
      meta_w.Take(),          std::move(strings),
      items_w.Take(),         rules_w.Take(),
      signals_w.Take(),       levels_w.Take(),
      id_pool_w.Take(),       drug_postings_w.Take(),
      adr_postings_w.Take(),  posting_pool_w.Take(),
      report_pool_w.Take(),   lattice_nav_w.Take(),
      lattice_pool_w.Take(),
  };
  uint64_t offset =
      kFileHeaderBytes + uint64_t{kSectionCount} * kSectionEntryBytes;
  BinaryWriter table_w;
  for (uint32_t i = 0; i < kSectionCount; ++i) {
    MARAS_RETURN_IF_ERROR(FitsU32(offset, "section offset"));
    MARAS_RETURN_IF_ERROR(FitsU32(payloads[i].size(), "section size"));
    table_w.U32(static_cast<uint32_t>(kSectionOrder[i]));
    table_w.U32(static_cast<uint32_t>(offset));
    table_w.U32(static_cast<uint32_t>(payloads[i].size()));
    table_w.U32(0);
    table_w.U64(core::Fnv1a64(payloads[i]));
    offset += payloads[i].size();
  }
  MARAS_RETURN_IF_ERROR(FitsU32(offset, "snapshot size"));

  BinaryWriter header_w;
  header_w.U32(kSnapshotMagic);
  header_w.U32(kSnapshotVersion);
  header_w.U32(kSectionCount);
  header_w.U32(0);
  header_w.U64(core::Fnv1a64(table_w.bytes()));

  std::string out;
  out.reserve(static_cast<size_t>(offset));
  out += header_w.bytes();
  out += table_w.bytes();
  for (std::string& payload : payloads) out += payload;
  return out;
}

maras::Status WriteSnapshotFile(const std::string& path,
                                const SnapshotInputs& inputs) {
  MARAS_ASSIGN_OR_RETURN(std::string bytes, EncodeSignalSnapshot(inputs));
  MARAS_RETURN_IF_ERROR_CTX(maras::AtomicWriteStringToFile(path, bytes),
                            "publishing snapshot " + path);
  return maras::Status::OK();
}

}  // namespace maras::serve
