#include "serve/snapshot_reader.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "util/status.h"

namespace maras::serve {
namespace {

constexpr size_t SectionIndex(SectionId id) {
  return static_cast<size_t>(id) - 1;
}

maras::Status CheckIndex(uint32_t index, uint32_t count, const char* what) {
  if (index >= count) {
    return maras::Status::InvalidArgument(
        std::string(what) + " index " + std::to_string(index) +
        " out of range [0, " + std::to_string(count) + ")");
  }
  return maras::Status::OK();
}

struct RuleRec {
  uint32_t drugs_off = 0;
  uint32_t drugs_count = 0;
  uint32_t adrs_off = 0;
  uint32_t adrs_count = 0;
  uint64_t support = 0;
  uint64_t antecedent_support = 0;
  uint64_t consequent_support = 0;
  double confidence = 0.0;
  double lift = 0.0;
};

maras::Status ReadRuleRec(const BoundedView& rules, uint32_t index,
                          RuleRec* out) {
  const size_t base = size_t{index} * kRuleRecordBytes;
  MARAS_RETURN_IF_ERROR(rules.U32At(base + kRuleDrugsOffset, &out->drugs_off));
  MARAS_RETURN_IF_ERROR(rules.U32At(base + kRuleDrugsCount, &out->drugs_count));
  MARAS_RETURN_IF_ERROR(rules.U32At(base + kRuleAdrsOffset, &out->adrs_off));
  MARAS_RETURN_IF_ERROR(rules.U32At(base + kRuleAdrsCount, &out->adrs_count));
  MARAS_RETURN_IF_ERROR(rules.U64At(base + kRuleSupport, &out->support));
  MARAS_RETURN_IF_ERROR(
      rules.U64At(base + kRuleAntecedentSupport, &out->antecedent_support));
  MARAS_RETURN_IF_ERROR(
      rules.U64At(base + kRuleConsequentSupport, &out->consequent_support));
  MARAS_RETURN_IF_ERROR(rules.F64At(base + kRuleConfidence, &out->confidence));
  MARAS_RETURN_IF_ERROR(rules.F64At(base + kRuleLift, &out->lift));
  return maras::Status::OK();
}

maras::Status ReadSignalRec(const BoundedView& signals, uint32_t index,
                            SignalRecord* out) {
  const size_t base = size_t{index} * kSignalRecordBytes;
  MARAS_RETURN_IF_ERROR(
      signals.U32At(base + kSignalTargetRule, &out->target_rule));
  MARAS_RETURN_IF_ERROR(
      signals.U32At(base + kSignalFirstLevel, &out->first_level));
  MARAS_RETURN_IF_ERROR(
      signals.U32At(base + kSignalLevelCount, &out->level_count));
  MARAS_RETURN_IF_ERROR(
      signals.U32At(base + kSignalReportOffset, &out->report_offset));
  MARAS_RETURN_IF_ERROR(
      signals.U32At(base + kSignalReportCount, &out->report_count));
  MARAS_RETURN_IF_ERROR(signals.F64At(base + kSignalScore, &out->score));
  return maras::Status::OK();
}

maras::Status ReadLevelRec(const BoundedView& levels, uint32_t index,
                           LevelRecord* out) {
  const size_t base = size_t{index} * kLevelRecordBytes;
  MARAS_RETURN_IF_ERROR(levels.U32At(base + kLevelFirstRule, &out->first_rule));
  MARAS_RETURN_IF_ERROR(levels.U32At(base + kLevelRuleCount, &out->rule_count));
  return maras::Status::OK();
}

struct ItemRec {
  uint32_t name_off = 0;
  uint32_t name_len = 0;
  uint32_t domain = 0;
};

maras::Status ReadItemRec(const BoundedView& items, uint32_t index,
                          ItemRec* out) {
  const size_t base = size_t{index} * kItemRecordBytes;
  MARAS_RETURN_IF_ERROR(items.U32At(base + kItemNameOffset, &out->name_off));
  MARAS_RETURN_IF_ERROR(items.U32At(base + kItemNameLength, &out->name_len));
  MARAS_RETURN_IF_ERROR(items.U32At(base + kItemDomain, &out->domain));
  return maras::Status::OK();
}

struct PostingRec {
  uint32_t offset = 0;
  uint32_t count = 0;
};

maras::Status ReadPostingRec(const BoundedView& postings, uint32_t index,
                             PostingRec* out) {
  const size_t base = size_t{index} * kPostingRecordBytes;
  MARAS_RETURN_IF_ERROR(postings.U32At(base + kPostingOffset, &out->offset));
  MARAS_RETURN_IF_ERROR(postings.U32At(base + kPostingCount, &out->count));
  return maras::Status::OK();
}

struct LatticeNavRec {
  uint32_t gen_off = 0;
  uint32_t gen_count = 0;
  uint32_t spec_off = 0;
  uint32_t spec_count = 0;
};

maras::Status ReadLatticeNavRec(const BoundedView& nav, uint32_t index,
                                LatticeNavRec* out) {
  const size_t base = size_t{index} * kLatticeNavRecordBytes;
  MARAS_RETURN_IF_ERROR(nav.U32At(base + kLatticeNavGenOffset, &out->gen_off));
  MARAS_RETURN_IF_ERROR(nav.U32At(base + kLatticeNavGenCount, &out->gen_count));
  MARAS_RETURN_IF_ERROR(
      nav.U32At(base + kLatticeNavSpecOffset, &out->spec_off));
  MARAS_RETURN_IF_ERROR(
      nav.U32At(base + kLatticeNavSpecCount, &out->spec_count));
  return maras::Status::OK();
}

// True iff `a` is a proper subset of `b`; both strictly increasing.
bool IsProperSubset(const std::vector<uint32_t>& a,
                    const std::vector<uint32_t>& b) {
  if (a.size() >= b.size()) return false;
  size_t j = 0;
  for (uint32_t id : a) {
    while (j < b.size() && b[j] < id) ++j;
    if (j == b.size() || b[j] != id) return false;
    ++j;
  }
  return true;
}

}  // namespace

maras::StatusOr<SignalSnapshot> SignalSnapshot::OpenFile(
    const std::string& path) {
  MARAS_ASSIGN_OR_RETURN(MappedFile mapped, MappedFile::Open(path));
  SignalSnapshot snapshot;
  snapshot.mapped_ = std::move(mapped);
  MARAS_RETURN_IF_ERROR_CTX(snapshot.Init(snapshot.mapped_.view()), path);
  return snapshot;
}

maras::StatusOr<SignalSnapshot> SignalSnapshot::FromBytes(std::string bytes) {
  SignalSnapshot snapshot;
  snapshot.owned_ = std::make_unique<std::string>(std::move(bytes));
  MARAS_RETURN_IF_ERROR(snapshot.Init(BoundedView::Of(*snapshot.owned_)));
  return snapshot;
}

maras::StatusOr<SignalSnapshot> SignalSnapshot::FromView(
    std::string_view bytes) {
  SignalSnapshot snapshot;
  MARAS_RETURN_IF_ERROR(snapshot.Init(BoundedView::Of(bytes)));
  return snapshot;
}

maras::Status SignalSnapshot::Init(BoundedView file) {
  // --- Framing: header ----------------------------------------------------
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t section_count = 0;
  uint32_t reserved = 0;
  uint64_t table_checksum = 0;
  MARAS_RETURN_IF_ERROR_CTX(file.U32At(0, &magic), "snapshot header");
  if (magic != kSnapshotMagic) {
    return maras::Status::Corruption("bad snapshot magic " +
                                     std::to_string(magic));
  }
  MARAS_RETURN_IF_ERROR(file.U32At(4, &version));
  if (version != kSnapshotVersion) {
    return maras::Status::Corruption("unsupported snapshot version " +
                                     std::to_string(version));
  }
  MARAS_RETURN_IF_ERROR(file.U32At(8, &section_count));
  if (section_count != kSectionCount) {
    return maras::Status::Corruption("forged section count " +
                                     std::to_string(section_count));
  }
  MARAS_RETURN_IF_ERROR(file.U32At(12, &reserved));
  if (reserved != 0) {
    return maras::Status::Corruption("non-zero header reserved field");
  }
  MARAS_RETURN_IF_ERROR(file.U64At(16, &table_checksum));

  // --- Framing: section table --------------------------------------------
  const size_t table_bytes = size_t{kSectionCount} * kSectionEntryBytes;
  std::string_view table;
  MARAS_RETURN_IF_ERROR_CTX(
      file.BytesAt(kFileHeaderBytes, table_bytes, &table),
      "section table");
  if (core::Fnv1a64(table) != table_checksum) {
    return maras::Status::Corruption("section table checksum mismatch");
  }
  uint64_t cursor = kFileHeaderBytes + table_bytes;
  for (uint32_t i = 0; i < kSectionCount; ++i) {
    const size_t base = kFileHeaderBytes + size_t{i} * kSectionEntryBytes;
    uint32_t id = 0;
    uint32_t offset = 0;
    uint32_t size = 0;
    uint32_t entry_reserved = 0;
    uint64_t checksum = 0;
    MARAS_RETURN_IF_ERROR(file.U32At(base + 0, &id));
    MARAS_RETURN_IF_ERROR(file.U32At(base + 4, &offset));
    MARAS_RETURN_IF_ERROR(file.U32At(base + 8, &size));
    MARAS_RETURN_IF_ERROR(file.U32At(base + 12, &entry_reserved));
    MARAS_RETURN_IF_ERROR(file.U64At(base + 16, &checksum));
    const std::string where = "section " + std::to_string(id);
    if (id != static_cast<uint32_t>(kSectionOrder[i])) {
      return maras::Status::Corruption(
          "section table order forged: entry " + std::to_string(i) +
          " has id " + std::to_string(id));
    }
    if (entry_reserved != 0) {
      return maras::Status::Corruption(where + ": non-zero reserved field");
    }
    // Sections must tile the file exactly: offset == end of the previous
    // section. One check rejects gaps, overlaps and forged offsets alike.
    if (offset != cursor) {
      return maras::Status::Corruption(
          where + ": offset " + std::to_string(offset) +
          " breaks contiguous layout (expected " + std::to_string(cursor) +
          ")");
    }
    std::string_view payload;
    MARAS_RETURN_IF_ERROR_CTX(file.BytesAt(offset, size, &payload),
                              where + " payload");
    if (core::Fnv1a64(payload) != checksum) {
      return maras::Status::Corruption(where + ": payload checksum mismatch");
    }
    MARAS_RETURN_IF_ERROR(file.Slice(offset, size, &sections_[i]));
    cursor += size;
  }
  if (cursor != file.size()) {
    return maras::Status::Corruption(
        std::to_string(file.size() - cursor) +
        " trailing bytes after the last section");
  }

  // --- Geometry: meta counts vs section sizes -----------------------------
  const BoundedView& meta = sections_[SectionIndex(SectionId::kMeta)];
  if (meta.size() != kMetaBytes) {
    return maras::Status::Corruption("meta section has " +
                                     std::to_string(meta.size()) + " bytes");
  }
  MARAS_RETURN_IF_ERROR(meta.U32At(kMetaSignalCount, &counts_.signals));
  MARAS_RETURN_IF_ERROR(meta.U32At(kMetaItemCount, &counts_.items));
  MARAS_RETURN_IF_ERROR(meta.U32At(kMetaRuleCount, &counts_.rules));
  MARAS_RETURN_IF_ERROR(meta.U32At(kMetaLevelCount, &counts_.levels));
  MARAS_RETURN_IF_ERROR(meta.U32At(kMetaItemIdCount, &counts_.item_ids));
  MARAS_RETURN_IF_ERROR(meta.U32At(kMetaPostingCount, &counts_.postings));
  MARAS_RETURN_IF_ERROR(meta.U32At(kMetaReportIdCount, &counts_.report_ids));
  MARAS_RETURN_IF_ERROR(meta.U32At(kMetaStringBytes, &counts_.string_bytes));
  MARAS_RETURN_IF_ERROR(
      meta.U64At(kMetaStatsTotalRules, &stats_.total_rules));
  MARAS_RETURN_IF_ERROR(
      meta.U64At(kMetaStatsFilteredRules, &stats_.filtered_rules));
  MARAS_RETURN_IF_ERROR(
      meta.U64At(kMetaStatsClosedMixed, &stats_.closed_mixed));
  MARAS_RETURN_IF_ERROR(meta.U64At(kMetaStatsMcacCount, &stats_.mcac_count));
  MARAS_RETURN_IF_ERROR(meta.U32At(kMetaLatticeNavCount, &counts_.lattice_nav));
  MARAS_RETURN_IF_ERROR(
      meta.U32At(kMetaLatticeEdgeCount, &counts_.lattice_edges));
  // The lattice is all-or-nothing: navigation covers every signal or none.
  if (counts_.lattice_nav != 0 && counts_.lattice_nav != counts_.signals) {
    return maras::Status::Corruption(
        "lattice nav count " + std::to_string(counts_.lattice_nav) +
        " covers neither all " + std::to_string(counts_.signals) +
        " signals nor none");
  }
  if (counts_.lattice_nav == 0 && counts_.lattice_edges != 0) {
    return maras::Status::Corruption(
        "lattice edge pool without lattice navigation");
  }

  const auto check_geometry = [this](SectionId id, uint64_t count,
                                     size_t elem_bytes,
                                     const char* what) -> maras::Status {
    const BoundedView& section = sections_[SectionIndex(id)];
    if (section.size() != count * elem_bytes) {
      return maras::Status::Corruption(
          std::string(what) + " section holds " +
          std::to_string(section.size()) + " bytes, meta promises " +
          std::to_string(count) + " records of " +
          std::to_string(elem_bytes));
    }
    return maras::Status::OK();
  };
  MARAS_RETURN_IF_ERROR(
      check_geometry(SectionId::kStrings, counts_.string_bytes, 1, "string"));
  MARAS_RETURN_IF_ERROR(check_geometry(SectionId::kItems, counts_.items,
                                       kItemRecordBytes, "item"));
  MARAS_RETURN_IF_ERROR(check_geometry(SectionId::kRules, counts_.rules,
                                       kRuleRecordBytes, "rule"));
  MARAS_RETURN_IF_ERROR(check_geometry(SectionId::kSignals, counts_.signals,
                                       kSignalRecordBytes, "signal"));
  MARAS_RETURN_IF_ERROR(check_geometry(SectionId::kLevels, counts_.levels,
                                       kLevelRecordBytes, "level"));
  MARAS_RETURN_IF_ERROR(check_geometry(SectionId::kItemIdPool,
                                       counts_.item_ids, kItemIdPoolElemBytes,
                                       "item-id pool"));
  MARAS_RETURN_IF_ERROR(check_geometry(SectionId::kDrugPostings, counts_.items,
                                       kPostingRecordBytes, "drug posting"));
  MARAS_RETURN_IF_ERROR(check_geometry(SectionId::kAdrPostings, counts_.items,
                                       kPostingRecordBytes, "ADR posting"));
  MARAS_RETURN_IF_ERROR(check_geometry(SectionId::kPostingPool,
                                       counts_.postings, kPostingPoolElemBytes,
                                       "posting pool"));
  MARAS_RETURN_IF_ERROR(check_geometry(SectionId::kReportIdPool,
                                       counts_.report_ids,
                                       kReportIdPoolElemBytes,
                                       "report-id pool"));
  MARAS_RETURN_IF_ERROR(check_geometry(SectionId::kLatticeNav,
                                       counts_.lattice_nav,
                                       kLatticeNavRecordBytes, "lattice nav"));
  MARAS_RETURN_IF_ERROR(check_geometry(SectionId::kLatticeEdgePool,
                                       counts_.lattice_edges,
                                       kLatticeEdgePoolElemBytes,
                                       "lattice edge pool"));

  // --- Semantics ----------------------------------------------------------
  MARAS_RETURN_IF_ERROR(ValidateItems());
  MARAS_RETURN_IF_ERROR(ValidateRules());
  MARAS_RETURN_IF_ERROR(ValidateSignals());
  MARAS_RETURN_IF_ERROR(ValidatePostings());
  MARAS_RETURN_IF_ERROR(ValidateLattice());
  return maras::Status::OK();
}

maras::Status SignalSnapshot::ValidateItems() const {
  const BoundedView& items = sections_[SectionIndex(SectionId::kItems)];
  const BoundedView& strings = sections_[SectionIndex(SectionId::kStrings)];
  std::unordered_set<std::string_view> seen;
  seen.reserve(counts_.items);
  uint64_t name_cursor = 0;
  for (uint32_t i = 0; i < counts_.items; ++i) {
    ItemRec rec;
    MARAS_RETURN_IF_ERROR(ReadItemRec(items, i, &rec));
    // Names must tile the string pool in item order — the writer's one
    // canonical packing.
    if (rec.name_off != name_cursor) {
      return maras::Status::Corruption(
          "item " + std::to_string(i) + " name offset " +
          std::to_string(rec.name_off) + " breaks canonical string packing");
    }
    name_cursor += rec.name_len;
    std::string_view name;
    MARAS_RETURN_IF_ERROR_CTX(
        strings.BytesAt(rec.name_off, rec.name_len, &name),
        "item " + std::to_string(i) + " name");
    if (!seen.insert(name).second) {
      return maras::Status::Corruption("duplicate item name at item " +
                                       std::to_string(i));
    }
    if (rec.domain != static_cast<uint32_t>(mining::ItemDomain::kDrug) &&
        rec.domain != static_cast<uint32_t>(mining::ItemDomain::kAdr)) {
      return maras::Status::Corruption("item " + std::to_string(i) +
                                       " has forged domain " +
                                       std::to_string(rec.domain));
    }
  }
  if (name_cursor != counts_.string_bytes) {
    return maras::Status::Corruption(
        "string pool holds " + std::to_string(counts_.string_bytes) +
        " bytes but item names cover " + std::to_string(name_cursor));
  }
  return maras::Status::OK();
}

maras::Status SignalSnapshot::ValidateRules() const {
  const BoundedView& rules = sections_[SectionIndex(SectionId::kRules)];
  const BoundedView& items = sections_[SectionIndex(SectionId::kItems)];
  const BoundedView& pool = sections_[SectionIndex(SectionId::kItemIdPool)];
  uint64_t pool_cursor = 0;
  const auto check_itemset = [&](uint32_t rule, uint32_t off, uint32_t count,
                                 uint32_t domain,
                                 const char* side) -> maras::Status {
    const std::string where =
        "rule " + std::to_string(rule) + " " + std::string(side);
    if (count == 0) {
      return maras::Status::Corruption(where + " itemset is empty");
    }
    if (off != pool_cursor) {
      return maras::Status::Corruption(
          where + " pool offset " + std::to_string(off) +
          " breaks canonical id-pool packing");
    }
    uint32_t prev = 0;
    for (uint32_t j = 0; j < count; ++j) {
      uint32_t id = 0;
      MARAS_RETURN_IF_ERROR(
          pool.U32At((uint64_t{off} + j) * kItemIdPoolElemBytes, &id));
      if (id >= counts_.items) {
        return maras::Status::Corruption(where + " references item " +
                                         std::to_string(id) + " of " +
                                         std::to_string(counts_.items));
      }
      if (j > 0 && id <= prev) {
        return maras::Status::Corruption(where +
                                         " itemset not strictly increasing");
      }
      uint32_t item_domain = 0;
      MARAS_RETURN_IF_ERROR(items.U32At(
          size_t{id} * kItemRecordBytes + kItemDomain, &item_domain));
      if (item_domain != domain) {
        return maras::Status::Corruption(where + " item " +
                                         std::to_string(id) +
                                         " is in the wrong domain");
      }
      prev = id;
    }
    pool_cursor += count;
    return maras::Status::OK();
  };
  for (uint32_t r = 0; r < counts_.rules; ++r) {
    RuleRec rec;
    MARAS_RETURN_IF_ERROR(ReadRuleRec(rules, r, &rec));
    MARAS_RETURN_IF_ERROR(check_itemset(
        r, rec.drugs_off, rec.drugs_count,
        static_cast<uint32_t>(mining::ItemDomain::kDrug), "drugs"));
    MARAS_RETURN_IF_ERROR(check_itemset(
        r, rec.adrs_off, rec.adrs_count,
        static_cast<uint32_t>(mining::ItemDomain::kAdr), "adrs"));
  }
  if (pool_cursor != counts_.item_ids) {
    return maras::Status::Corruption(
        "item-id pool holds " + std::to_string(counts_.item_ids) +
        " ids but rule itemsets cover " + std::to_string(pool_cursor));
  }
  return maras::Status::OK();
}

maras::Status SignalSnapshot::ValidateSignals() const {
  const BoundedView& signals = sections_[SectionIndex(SectionId::kSignals)];
  const BoundedView& levels = sections_[SectionIndex(SectionId::kLevels)];
  uint64_t rule_cursor = 0;
  uint64_t level_cursor = 0;
  uint64_t report_cursor = 0;
  for (uint32_t s = 0; s < counts_.signals; ++s) {
    const std::string where = "signal " + std::to_string(s);
    SignalRecord rec;
    MARAS_RETURN_IF_ERROR(ReadSignalRec(signals, s, &rec));
    uint32_t reserved = 0;
    MARAS_RETURN_IF_ERROR(signals.U32At(
        size_t{s} * kSignalRecordBytes + kSignalReportCount + 4, &reserved));
    if (reserved != 0) {
      return maras::Status::Corruption(where + ": non-zero reserved field");
    }
    // The flattened rule/level/report arrays are tiled by signals in rank
    // order; every index field must continue exactly where the previous
    // signal stopped.
    if (rec.target_rule != rule_cursor) {
      return maras::Status::Corruption(
          where + ": target rule " + std::to_string(rec.target_rule) +
          " breaks canonical rule order (expected " +
          std::to_string(rule_cursor) + ")");
    }
    ++rule_cursor;
    if (rec.first_level != level_cursor) {
      return maras::Status::Corruption(
          where + ": first level " + std::to_string(rec.first_level) +
          " breaks canonical level order (expected " +
          std::to_string(level_cursor) + ")");
    }
    for (uint32_t l = 0; l < rec.level_count; ++l) {
      const uint64_t level_index = level_cursor + l;
      if (level_index >= counts_.levels) {
        return maras::Status::Corruption(where + " claims level " +
                                         std::to_string(level_index) +
                                         " of " +
                                         std::to_string(counts_.levels));
      }
      LevelRecord level;
      MARAS_RETURN_IF_ERROR(
          ReadLevelRec(levels, static_cast<uint32_t>(level_index), &level));
      if (level.first_rule != rule_cursor) {
        return maras::Status::Corruption(
            where + " level " + std::to_string(l) + ": first rule " +
            std::to_string(level.first_rule) +
            " breaks canonical rule order (expected " +
            std::to_string(rule_cursor) + ")");
      }
      rule_cursor += level.rule_count;
      if (rule_cursor > counts_.rules) {
        return maras::Status::Corruption(where + " level " +
                                         std::to_string(l) +
                                         " overruns the rule section");
      }
    }
    level_cursor += rec.level_count;
    if (rec.report_offset != report_cursor) {
      return maras::Status::Corruption(
          where + ": report offset " + std::to_string(rec.report_offset) +
          " breaks canonical report packing (expected " +
          std::to_string(report_cursor) + ")");
    }
    report_cursor += rec.report_count;
    if (report_cursor > counts_.report_ids) {
      return maras::Status::Corruption(where +
                                       " overruns the report-id pool");
    }
  }
  if (rule_cursor != counts_.rules) {
    return maras::Status::Corruption(
        std::to_string(counts_.rules) + " rules in section, signals cover " +
        std::to_string(rule_cursor));
  }
  if (level_cursor != counts_.levels) {
    return maras::Status::Corruption(
        std::to_string(counts_.levels) + " levels in section, signals cover " +
        std::to_string(level_cursor));
  }
  if (report_cursor != counts_.report_ids) {
    return maras::Status::Corruption(
        std::to_string(counts_.report_ids) +
        " report ids in pool, signals cover " + std::to_string(report_cursor));
  }
  return maras::Status::OK();
}

maras::Status SignalSnapshot::ValidatePostings() const {
  const BoundedView& signals = sections_[SectionIndex(SectionId::kSignals)];
  const BoundedView& rules = sections_[SectionIndex(SectionId::kRules)];
  const BoundedView& id_pool = sections_[SectionIndex(SectionId::kItemIdPool)];
  const BoundedView& pool = sections_[SectionIndex(SectionId::kPostingPool)];

  // Postings carry no information of their own — they are an index derived
  // from the signal targets. Re-derive and demand an exact match, so a
  // forged posting can never route a query to the wrong signal.
  std::vector<std::vector<uint32_t>> expected[2];
  expected[0].resize(counts_.items);
  expected[1].resize(counts_.items);
  for (uint32_t s = 0; s < counts_.signals; ++s) {
    uint32_t target_rule = 0;
    MARAS_RETURN_IF_ERROR(signals.U32At(
        size_t{s} * kSignalRecordBytes + kSignalTargetRule, &target_rule));
    RuleRec rec;
    MARAS_RETURN_IF_ERROR(ReadRuleRec(rules, target_rule, &rec));
    for (uint32_t j = 0; j < rec.drugs_count; ++j) {
      uint32_t id = 0;
      MARAS_RETURN_IF_ERROR(id_pool.U32At(
          (uint64_t{rec.drugs_off} + j) * kItemIdPoolElemBytes, &id));
      expected[0][id].push_back(s);
    }
    for (uint32_t j = 0; j < rec.adrs_count; ++j) {
      uint32_t id = 0;
      MARAS_RETURN_IF_ERROR(id_pool.U32At(
          (uint64_t{rec.adrs_off} + j) * kItemIdPoolElemBytes, &id));
      expected[1][id].push_back(s);
    }
  }

  uint64_t pool_cursor = 0;
  for (int side = 0; side < 2; ++side) {
    const BoundedView& section =
        sections_[SectionIndex(side == 0 ? SectionId::kDrugPostings
                                         : SectionId::kAdrPostings)];
    const char* side_name = side == 0 ? "drug" : "ADR";
    for (uint32_t i = 0; i < counts_.items; ++i) {
      const std::string where =
          std::string(side_name) + " postings of item " + std::to_string(i);
      PostingRec rec;
      MARAS_RETURN_IF_ERROR(ReadPostingRec(section, i, &rec));
      if (rec.offset != pool_cursor) {
        return maras::Status::Corruption(
            where + ": offset " + std::to_string(rec.offset) +
            " breaks canonical posting packing");
      }
      const std::vector<uint32_t>& want = expected[side][i];
      if (rec.count != want.size()) {
        return maras::Status::Corruption(
            where + ": " + std::to_string(rec.count) +
            " entries, derivation from targets yields " +
            std::to_string(want.size()));
      }
      for (uint32_t j = 0; j < rec.count; ++j) {
        uint32_t signal = 0;
        MARAS_RETURN_IF_ERROR(pool.U32At(
            (uint64_t{rec.offset} + j) * kPostingPoolElemBytes, &signal));
        if (signal != want[j]) {
          return maras::Status::Corruption(
              where + " entry " + std::to_string(j) +
              " disagrees with derivation from targets");
        }
      }
      pool_cursor += rec.count;
    }
  }
  if (pool_cursor != counts_.postings) {
    return maras::Status::Corruption(
        "posting pool holds " + std::to_string(counts_.postings) +
        " entries but lists cover " + std::to_string(pool_cursor));
  }
  return maras::Status::OK();
}

maras::Status SignalSnapshot::ValidateLattice() const {
  if (counts_.lattice_nav == 0) return maras::Status::OK();
  const BoundedView& signals = sections_[SectionIndex(SectionId::kSignals)];
  const BoundedView& rules = sections_[SectionIndex(SectionId::kRules)];
  const BoundedView& id_pool = sections_[SectionIndex(SectionId::kItemIdPool)];
  const BoundedView& nav = sections_[SectionIndex(SectionId::kLatticeNav)];
  const BoundedView& pool =
      sections_[SectionIndex(SectionId::kLatticeEdgePool)];

  // Like postings, the lattice lists carry no information of their own —
  // they are the covering relation of the signal targets. Re-derive it and
  // demand an exact match, so forged edges can never steer a drill-down to
  // an unrelated signal.
  std::vector<std::vector<uint32_t>> drugs(counts_.signals);
  std::vector<std::vector<uint32_t>> adrs(counts_.signals);
  for (uint32_t s = 0; s < counts_.signals; ++s) {
    uint32_t target_rule = 0;
    MARAS_RETURN_IF_ERROR(signals.U32At(
        size_t{s} * kSignalRecordBytes + kSignalTargetRule, &target_rule));
    RuleRec rec;
    MARAS_RETURN_IF_ERROR(ReadRuleRec(rules, target_rule, &rec));
    drugs[s].reserve(rec.drugs_count);
    for (uint32_t j = 0; j < rec.drugs_count; ++j) {
      uint32_t id = 0;
      MARAS_RETURN_IF_ERROR(id_pool.U32At(
          (uint64_t{rec.drugs_off} + j) * kItemIdPoolElemBytes, &id));
      drugs[s].push_back(id);
    }
    adrs[s].reserve(rec.adrs_count);
    for (uint32_t j = 0; j < rec.adrs_count; ++j) {
      uint32_t id = 0;
      MARAS_RETURN_IF_ERROR(id_pool.U32At(
          (uint64_t{rec.adrs_off} + j) * kItemIdPoolElemBytes, &id));
      adrs[s].push_back(id);
    }
  }
  std::vector<uint32_t> order(counts_.signals);
  for (uint32_t i = 0; i < counts_.signals; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (adrs[a] != adrs[b]) return adrs[a] < adrs[b];
    return a < b;
  });
  std::vector<std::vector<uint32_t>> gen(counts_.signals);
  size_t group_begin = 0;
  while (group_begin < order.size()) {
    size_t group_end = group_begin + 1;
    while (group_end < order.size() &&
           adrs[order[group_end]] == adrs[order[group_begin]]) {
      ++group_end;
    }
    for (size_t i = group_begin; i < group_end; ++i) {
      const uint32_t s = order[i];
      std::vector<uint32_t> below;
      for (size_t j = group_begin; j < group_end; ++j) {
        const uint32_t t = order[j];
        if (t != s && IsProperSubset(drugs[t], drugs[s])) below.push_back(t);
      }
      for (uint32_t t : below) {
        bool maximal = true;
        for (uint32_t u : below) {
          if (u != t && IsProperSubset(drugs[t], drugs[u])) {
            maximal = false;
            break;
          }
        }
        if (maximal) gen[s].push_back(t);
      }
      std::sort(gen[s].begin(), gen[s].end());
    }
    group_begin = group_end;
  }
  std::vector<std::vector<uint32_t>> spec(counts_.signals);
  for (uint32_t s = 0; s < counts_.signals; ++s) {
    for (uint32_t t : gen[s]) spec[t].push_back(s);
  }

  uint64_t edge_cursor = 0;
  const auto check_list = [&](uint32_t s, uint32_t off, uint32_t count,
                              const std::vector<uint32_t>& want,
                              const char* kind) -> maras::Status {
    const std::string where = "lattice " + std::string(kind) +
                              " of signal " + std::to_string(s);
    if (off != edge_cursor) {
      return maras::Status::Corruption(
          where + ": offset " + std::to_string(off) +
          " breaks canonical edge packing (expected " +
          std::to_string(edge_cursor) + ")");
    }
    if (count != want.size()) {
      return maras::Status::Corruption(
          where + ": " + std::to_string(count) +
          " entries, derivation from targets yields " +
          std::to_string(want.size()));
    }
    for (uint32_t j = 0; j < count; ++j) {
      uint32_t entry = 0;
      MARAS_RETURN_IF_ERROR(pool.U32At(
          (uint64_t{off} + j) * kLatticeEdgePoolElemBytes, &entry));
      if (entry != want[j]) {
        return maras::Status::Corruption(
            where + " entry " + std::to_string(j) +
            " disagrees with derivation from targets");
      }
    }
    edge_cursor += count;
    return maras::Status::OK();
  };
  for (uint32_t s = 0; s < counts_.signals; ++s) {
    LatticeNavRec rec;
    MARAS_RETURN_IF_ERROR(ReadLatticeNavRec(nav, s, &rec));
    MARAS_RETURN_IF_ERROR(
        check_list(s, rec.gen_off, rec.gen_count, gen[s], "generalizations"));
    MARAS_RETURN_IF_ERROR(check_list(s, rec.spec_off, rec.spec_count, spec[s],
                                     "specializations"));
  }
  if (edge_cursor != counts_.lattice_edges) {
    return maras::Status::Corruption(
        "lattice edge pool holds " + std::to_string(counts_.lattice_edges) +
        " entries but lists cover " + std::to_string(edge_cursor));
  }
  return maras::Status::OK();
}

maras::Status SignalSnapshot::ItemName(uint32_t item,
                                       std::string_view* name) const {
  MARAS_RETURN_IF_ERROR(CheckIndex(item, counts_.items, "item"));
  ItemRec rec;
  MARAS_RETURN_IF_ERROR(
      ReadItemRec(sections_[SectionIndex(SectionId::kItems)], item, &rec));
  return sections_[SectionIndex(SectionId::kStrings)].BytesAt(
      rec.name_off, rec.name_len, name);
}

maras::Status SignalSnapshot::Domain(uint32_t item,
                                     mining::ItemDomain* domain) const {
  MARAS_RETURN_IF_ERROR(CheckIndex(item, counts_.items, "item"));
  ItemRec rec;
  MARAS_RETURN_IF_ERROR(
      ReadItemRec(sections_[SectionIndex(SectionId::kItems)], item, &rec));
  *domain = static_cast<mining::ItemDomain>(rec.domain);
  return maras::Status::OK();
}

maras::Status SignalSnapshot::Signal(uint32_t index, SignalRecord* out) const {
  MARAS_RETURN_IF_ERROR(CheckIndex(index, counts_.signals, "signal"));
  return ReadSignalRec(sections_[SectionIndex(SectionId::kSignals)], index,
                       out);
}

maras::Status SignalSnapshot::Level(uint32_t index, LevelRecord* out) const {
  MARAS_RETURN_IF_ERROR(CheckIndex(index, counts_.levels, "level"));
  return ReadLevelRec(sections_[SectionIndex(SectionId::kLevels)], index, out);
}

maras::Status SignalSnapshot::Rule(uint32_t index,
                                   core::DrugAdrRule* out) const {
  MARAS_RETURN_IF_ERROR(CheckIndex(index, counts_.rules, "rule"));
  RuleRec rec;
  MARAS_RETURN_IF_ERROR(
      ReadRuleRec(sections_[SectionIndex(SectionId::kRules)], index, &rec));
  const BoundedView& pool = sections_[SectionIndex(SectionId::kItemIdPool)];
  out->drugs.clear();
  out->drugs.reserve(rec.drugs_count);
  for (uint32_t j = 0; j < rec.drugs_count; ++j) {
    uint32_t id = 0;
    MARAS_RETURN_IF_ERROR(pool.U32At(
        (uint64_t{rec.drugs_off} + j) * kItemIdPoolElemBytes, &id));
    out->drugs.push_back(id);
  }
  out->adrs.clear();
  out->adrs.reserve(rec.adrs_count);
  for (uint32_t j = 0; j < rec.adrs_count; ++j) {
    uint32_t id = 0;
    MARAS_RETURN_IF_ERROR(pool.U32At(
        (uint64_t{rec.adrs_off} + j) * kItemIdPoolElemBytes, &id));
    out->adrs.push_back(id);
  }
  out->support = rec.support;
  out->antecedent_support = rec.antecedent_support;
  out->consequent_support = rec.consequent_support;
  out->confidence = rec.confidence;
  out->lift = rec.lift;
  return maras::Status::OK();
}

maras::Status SignalSnapshot::ReportIds(uint32_t signal,
                                        std::vector<uint64_t>* out) const {
  SignalRecord rec;
  MARAS_RETURN_IF_ERROR(Signal(signal, &rec));
  const BoundedView& pool =
      sections_[SectionIndex(SectionId::kReportIdPool)];
  out->clear();
  out->reserve(rec.report_count);
  for (uint32_t j = 0; j < rec.report_count; ++j) {
    uint64_t id = 0;
    MARAS_RETURN_IF_ERROR(pool.U64At(
        (uint64_t{rec.report_offset} + j) * kReportIdPoolElemBytes, &id));
    out->push_back(id);
  }
  return maras::Status::OK();
}

maras::Status SignalSnapshot::Postings(mining::ItemDomain side, uint32_t item,
                                       std::vector<uint32_t>* out) const {
  MARAS_RETURN_IF_ERROR(CheckIndex(item, counts_.items, "item"));
  const BoundedView& section =
      sections_[SectionIndex(side == mining::ItemDomain::kDrug
                                 ? SectionId::kDrugPostings
                                 : SectionId::kAdrPostings)];
  PostingRec rec;
  MARAS_RETURN_IF_ERROR(ReadPostingRec(section, item, &rec));
  const BoundedView& pool = sections_[SectionIndex(SectionId::kPostingPool)];
  out->clear();
  out->reserve(rec.count);
  for (uint32_t j = 0; j < rec.count; ++j) {
    uint32_t signal = 0;
    MARAS_RETURN_IF_ERROR(pool.U32At(
        (uint64_t{rec.offset} + j) * kPostingPoolElemBytes, &signal));
    out->push_back(signal);
  }
  return maras::Status::OK();
}

maras::Status SignalSnapshot::LatticeList(uint32_t signal, bool spec,
                                          std::vector<uint32_t>* out) const {
  MARAS_RETURN_IF_ERROR(CheckIndex(signal, counts_.signals, "signal"));
  if (counts_.lattice_nav == 0) {
    return maras::Status::NotFound("snapshot carries no lattice navigation");
  }
  LatticeNavRec rec;
  MARAS_RETURN_IF_ERROR(ReadLatticeNavRec(
      sections_[SectionIndex(SectionId::kLatticeNav)], signal, &rec));
  const uint32_t off = spec ? rec.spec_off : rec.gen_off;
  const uint32_t count = spec ? rec.spec_count : rec.gen_count;
  const BoundedView& pool =
      sections_[SectionIndex(SectionId::kLatticeEdgePool)];
  out->clear();
  out->reserve(count);
  for (uint32_t j = 0; j < count; ++j) {
    uint32_t entry = 0;
    MARAS_RETURN_IF_ERROR(pool.U32At(
        (uint64_t{off} + j) * kLatticeEdgePoolElemBytes, &entry));
    out->push_back(entry);
  }
  return maras::Status::OK();
}

maras::Status SignalSnapshot::Generalizations(
    uint32_t signal, std::vector<uint32_t>* out) const {
  return LatticeList(signal, /*spec=*/false, out);
}

maras::Status SignalSnapshot::Specializations(
    uint32_t signal, std::vector<uint32_t>* out) const {
  return LatticeList(signal, /*spec=*/true, out);
}

maras::StatusOr<core::RankedMcac> SignalSnapshot::Materialize(
    uint32_t index) const {
  SignalRecord rec;
  MARAS_RETURN_IF_ERROR(Signal(index, &rec));
  core::RankedMcac ranked;
  ranked.score = rec.score;
  MARAS_RETURN_IF_ERROR(Rule(rec.target_rule, &ranked.mcac.target));
  ranked.mcac.levels.resize(rec.level_count);
  for (uint32_t l = 0; l < rec.level_count; ++l) {
    LevelRecord level;
    MARAS_RETURN_IF_ERROR(Level(rec.first_level + l, &level));
    std::vector<core::DrugAdrRule>& out_level = ranked.mcac.levels[l];
    out_level.resize(level.rule_count);
    for (uint32_t r = 0; r < level.rule_count; ++r) {
      MARAS_RETURN_IF_ERROR(Rule(level.first_rule + r, &out_level[r]));
    }
  }
  return ranked;
}

maras::StatusOr<ReconstructedInputs> ReconstructInputs(
    const SignalSnapshot& snapshot) {
  ReconstructedInputs out;
  out.stats = snapshot.stats();
  // With zero signals the lattice-present and lattice-absent encodings
  // coincide, so defaulting to "present" keeps the round-trip exact.
  out.include_lattice =
      snapshot.counts().signals == 0 || snapshot.has_lattice_nav();
  for (uint32_t i = 0; i < snapshot.counts().items; ++i) {
    std::string_view name;
    MARAS_RETURN_IF_ERROR(snapshot.ItemName(i, &name));
    mining::ItemDomain domain = mining::ItemDomain::kDrug;
    MARAS_RETURN_IF_ERROR(snapshot.Domain(i, &domain));
    MARAS_ASSIGN_OR_RETURN(mining::ItemId id, out.items.Intern(name, domain));
    if (id != i) {
      return maras::Status::Internal("reconstructed dictionary diverged");
    }
  }
  const uint32_t signals = snapshot.counts().signals;
  out.signals.reserve(signals);
  out.report_ids.reserve(signals);
  for (uint32_t s = 0; s < signals; ++s) {
    MARAS_ASSIGN_OR_RETURN(core::RankedMcac ranked, snapshot.Materialize(s));
    out.signals.push_back(std::move(ranked));
    std::vector<uint64_t> reports;
    MARAS_RETURN_IF_ERROR(snapshot.ReportIds(s, &reports));
    out.report_ids.push_back(std::move(reports));
  }
  return out;
}

}  // namespace maras::serve
