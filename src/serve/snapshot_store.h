#ifndef MARAS_SERVE_SNAPSHOT_STORE_H_
#define MARAS_SERVE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/snapshot_reader.h"
#include "serve/snapshot_writer.h"
#include "util/mutex.h"
#include "util/statusor.h"
#include "util/thread_annotations.h"

namespace maras::serve {

// A directory of immutable snapshot generations with crash-safe,
// pointer-swap publication and last-good fallback.
//
// On-disk layout:
//   <dir>/snapshot-000001.msnp     generation files, never rewritten
//   <dir>/snapshot-000002.msnp
//   <dir>/CURRENT                  name of the committed generation
//
// Publish writes the next generation file, then swings CURRENT to it; both
// writes go through the checksummed tmp+fsync+rename helper, so every
// possible crash point leaves the directory in one of three states — old
// generation committed, new file present but uncommitted, or new
// generation committed — and never a torn file under a committed name.
//
// Resolution (Acquire/Refresh) tries the CURRENT target first, then every
// generation newest-first. A candidate that fails validation is diagnosed,
// optionally quarantined (renamed to <file>.quarantined so it can never be
// retried but stays available for forensics), and the scan falls through
// to the previous generation: readers keep serving the last good snapshot
// as long as any good generation exists.
//
// Readers hold the snapshot through shared_ptr refcounting — a Publish or
// Refresh swaps the store's pointer but in-flight readers keep their
// generation mapped until they drop it.
class SnapshotStore {
 public:
  struct Options {
    std::string dir;
    // Rename invalid generation files out of the candidate set. Disable to
    // keep fault-injection fixtures in place across repeated opens.
    bool quarantine = true;
    // Deterministic fault injection: called at each named publish stage
    // ("publish.pre-snapshot-write", "publish.post-snapshot-write",
    // "publish.pre-current-write", "publish.post-current-write"). Returning
    // false makes Publish stop dead — no cleanup, no rollback — exactly
    // like a process kill at that instant, and surfaces Cancelled.
    std::function<bool(std::string_view)> stage_hook;
  };

  explicit SnapshotStore(Options options) : options_(std::move(options)) {}

  // Encodes `inputs` as the next generation, commits it via CURRENT, and
  // swaps it in for subsequent Acquire calls. Publishes are serialized by
  // publish_mu_ — concurrent callers queue up rather than racing generation
  // selection (both picking the same number and overwriting each other's
  // file, one publish silently vanishing).
  maras::Status Publish(const SnapshotInputs& inputs) EXCLUDES(publish_mu_);

  // The committed snapshot, resolving (with fallback) on first use. The
  // returned snapshot stays valid for as long as the caller holds the
  // pointer, across any number of later publishes.
  maras::StatusOr<std::shared_ptr<const SignalSnapshot>> Acquire();

  // Re-resolves from disk and swaps the served snapshot. NotFound when the
  // directory holds no valid generation at all.
  maras::Status Refresh();

  // Generation currently served (0 when none has been resolved yet).
  uint64_t current_generation() const;

  // Human-readable log of every rejected generation and quarantine action,
  // oldest first.
  std::vector<std::string> diagnostics() const;

  static std::string GenerationFileName(uint64_t generation);

 private:
  struct Resolved {
    std::shared_ptr<const SignalSnapshot> snapshot;
    uint64_t generation = 0;
  };

  // Scans dir for generation files, ascending. IO errors are IOError.
  maras::StatusOr<std::vector<uint64_t>> ListGenerations() const;

  // Tries CURRENT, then generations newest-first; diagnoses and optionally
  // quarantines every invalid candidate it passes over.
  maras::StatusOr<Resolved> Resolve();

  bool RunHook(std::string_view stage) const;
  void AddDiagnostic(std::string message);
  void Quarantine(const std::string& file_name);

  const Options options_;

  // Concurrency capability model: mutex_ guards the served state — the
  // current snapshot pointer, its generation number, and the diagnostics
  // log. It is a reader/writer capability because the serve path is
  // read-mostly: Acquire/current_generation/diagnostics take it shared, so
  // queries never serialize behind each other; only a swap (Refresh) or a
  // diagnostic append takes it exclusively. publish_mu_ is a separate
  // whole-publish capability (see Publish) held across generation
  // selection, the two file writes, and the final Refresh; it guards no
  // field and never nests inside mutex_ — lock order is always
  // publish_mu_ -> mutex_.
  mutable SharedMutex mutex_;
  Mutex publish_mu_ ACQUIRED_BEFORE(mutex_);
  std::shared_ptr<const SignalSnapshot> current_ GUARDED_BY(mutex_);
  uint64_t generation_ GUARDED_BY(mutex_) = 0;
  std::vector<std::string> diagnostics_ GUARDED_BY(mutex_);
};

}  // namespace maras::serve

#endif  // MARAS_SERVE_SNAPSHOT_STORE_H_
