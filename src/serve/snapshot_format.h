#ifndef MARAS_SERVE_SNAPSHOT_FORMAT_H_
#define MARAS_SERVE_SNAPSHOT_FORMAT_H_

#include <cstdint>

namespace maras::serve {

// ---------------------------------------------------------------------------
// Signal snapshot: the immutable, relocatable serving-side image of one
// analysis run — ranked MCACs, their contextual rules, item names,
// drug→signal / ADR→signal postings and supporting report ids — laid out as
// one offset-indexed arena so a query process can memory-map it and answer
// lookups without parsing, allocation, or pointer fix-up.
//
// File layout (all integers little-endian, fixed width; no varints):
//
//   [FileHeader: 24 bytes]
//     magic            u32  "MSNP"
//     version          u32
//     section_count    u32  (== kSectionCount)
//     reserved         u32  (0)
//     table_checksum   u64  FNV-1a 64 over the section-table bytes
//   [SectionTable: section_count × 24 bytes]
//     id               u32  (SectionId, in kSectionOrder order)
//     offset           u32  absolute file offset of the payload
//     size             u32  payload size in bytes
//     reserved         u32  (0)
//     checksum         u64  FNV-1a 64 over the payload bytes
//   [Section payloads, byte-contiguous in table order]
//
// Relocatability: nothing in the file is a pointer. Cross-references are
// 32-bit *element indices* into sibling sections (the PoolOffset idiom), so
// the image is valid at any load address and can be copied byte-for-byte.
//
// Canonical form: the writer emits exactly one encoding for a given input —
// sections are contiguous in kSectionOrder with no gaps, string/pool
// offsets are cumulative in emission order, and posting lists are exactly
// the lists derived from the signal targets. The reader validates all of
// it, so decode→re-encode is byte-identical and a "plausible but not
// writer-shaped" file is rejected as forged, not half-served.
//
// Failure model: every field of an opened snapshot is hostile until
// validated. Framing (magic/version/size/offsets/checksums) and semantics
// (counts, index ranges, domains, canonical layout) are checked before any
// query runs, and all byte access — during validation and during queries —
// goes through serve/bounded_view.h, so a forged offset is a structured
// Corruption status, never an out-of-bounds read.
// ---------------------------------------------------------------------------

// "MSNP" read as a little-endian u32.
inline constexpr uint32_t kSnapshotMagic = 0x504e534d;
// v2 added the optional lattice-navigation sections (generalize/specialize
// covering edges between stored signals) and their two meta counts.
inline constexpr uint32_t kSnapshotVersion = 2;

enum class SectionId : uint32_t {
  kMeta = 1,          // counts + rule-space stats (fixed 72 bytes)
  kStrings = 2,       // concatenated item-name bytes
  kItems = 3,         // per item: name_offset, name_length, domain
  kRules = 4,         // flattened rule records (targets + context rules)
  kSignals = 5,       // per ranked signal: target/levels/reports/score
  kLevels = 6,        // per context level: first_rule, rule_count
  kItemIdPool = 7,    // u32 ItemId pool backing every rule itemset
  kDrugPostings = 8,  // per item: (offset, count) into the posting pool
  kAdrPostings = 9,   // per item: (offset, count) into the posting pool
  kPostingPool = 10,  // u32 signal indices, ascending per list
  kReportIdPool = 11, // u64 report primary-ids, grouped by signal
  kLatticeNav = 12,   // per signal: generalize/specialize edge-pool extents
  kLatticeEdgePool = 13,  // u32 signal indices backing the nav lists
};

inline constexpr uint32_t kSectionCount = 13;

// The one canonical section order; the writer emits it and the reader
// rejects any other (a reordered table is a forged file, not a variant).
// The lattice sections are "optional" by content, not by presence: a
// snapshot written without lattice navigation carries them empty (and a
// zero kMetaLatticeNavCount), so the tiling and checksum discipline is
// uniform across every snapshot.
inline constexpr SectionId kSectionOrder[kSectionCount] = {
    SectionId::kMeta,         SectionId::kStrings,
    SectionId::kItems,        SectionId::kRules,
    SectionId::kSignals,      SectionId::kLevels,
    SectionId::kItemIdPool,   SectionId::kDrugPostings,
    SectionId::kAdrPostings,  SectionId::kPostingPool,
    SectionId::kReportIdPool, SectionId::kLatticeNav,
    SectionId::kLatticeEdgePool,
};

// Fixed header/record geometry. Field offsets below are relative to the
// start of the enclosing record; records are tightly packed (no padding
// other than the fields spelled out here), and readers access fields by
// explicit offset through BoundedView — the structs are never memcpy'd
// wholesale, so there is no layout UB to get wrong.
inline constexpr size_t kFileHeaderBytes = 24;
inline constexpr size_t kSectionEntryBytes = 24;

// kMeta payload: eight u32 counts, the four u64 RuleSpaceStats fields, then
// the two u32 lattice counts appended by v2. kMetaLatticeNavCount is the
// presence flag for the lattice sections: it equals the signal count when
// navigation was written and 0 when it was not (with zero signals the two
// encodings coincide, so the ambiguity is harmless).
inline constexpr size_t kMetaBytes = 8 * 4 + 4 * 8 + 2 * 4;
inline constexpr size_t kMetaSignalCount = 0;
inline constexpr size_t kMetaItemCount = 4;
inline constexpr size_t kMetaRuleCount = 8;
inline constexpr size_t kMetaLevelCount = 12;
inline constexpr size_t kMetaItemIdCount = 16;
inline constexpr size_t kMetaPostingCount = 20;
inline constexpr size_t kMetaReportIdCount = 24;
inline constexpr size_t kMetaStringBytes = 28;
inline constexpr size_t kMetaStatsTotalRules = 32;
inline constexpr size_t kMetaStatsFilteredRules = 40;
inline constexpr size_t kMetaStatsClosedMixed = 48;
inline constexpr size_t kMetaStatsMcacCount = 56;
inline constexpr size_t kMetaLatticeNavCount = 64;
inline constexpr size_t kMetaLatticeEdgeCount = 68;

// kItems record: {name_offset u32, name_length u32, domain u32}.
inline constexpr size_t kItemRecordBytes = 12;
inline constexpr size_t kItemNameOffset = 0;
inline constexpr size_t kItemNameLength = 4;
inline constexpr size_t kItemDomain = 8;

// kRules record: {drugs_offset u32, drugs_count u32, adrs_offset u32,
// adrs_count u32, support u64, antecedent_support u64,
// consequent_support u64, confidence f64, lift f64}. Offsets are element
// indices into kItemIdPool.
inline constexpr size_t kRuleRecordBytes = 56;
inline constexpr size_t kRuleDrugsOffset = 0;
inline constexpr size_t kRuleDrugsCount = 4;
inline constexpr size_t kRuleAdrsOffset = 8;
inline constexpr size_t kRuleAdrsCount = 12;
inline constexpr size_t kRuleSupport = 16;
inline constexpr size_t kRuleAntecedentSupport = 24;
inline constexpr size_t kRuleConsequentSupport = 32;
inline constexpr size_t kRuleConfidence = 40;
inline constexpr size_t kRuleLift = 48;

// kSignals record: {target_rule u32, first_level u32, level_count u32,
// report_offset u32, report_count u32, reserved u32, score f64}. Signals
// are stored in rank order, so record index == rank − 1.
inline constexpr size_t kSignalRecordBytes = 32;
inline constexpr size_t kSignalTargetRule = 0;
inline constexpr size_t kSignalFirstLevel = 4;
inline constexpr size_t kSignalLevelCount = 8;
inline constexpr size_t kSignalReportOffset = 12;
inline constexpr size_t kSignalReportCount = 16;
inline constexpr size_t kSignalScore = 24;

// kLevels record: {first_rule u32, rule_count u32}.
inline constexpr size_t kLevelRecordBytes = 8;
inline constexpr size_t kLevelFirstRule = 0;
inline constexpr size_t kLevelRuleCount = 4;

// kDrugPostings / kAdrPostings record: {offset u32, count u32} into
// kPostingPool; one record per interned item, dense by ItemId.
inline constexpr size_t kPostingRecordBytes = 8;
inline constexpr size_t kPostingOffset = 0;
inline constexpr size_t kPostingCount = 4;

// kLatticeNav record: {gen_offset u32, gen_count u32, spec_offset u32,
// spec_count u32}. Offsets are element indices into kLatticeEdgePool; one
// record per signal, in rank order. "Generalizations" of signal s are the
// signals with the same ADR set whose drug set is a maximal proper subset
// of s's (one covering step up the concept lattice); "specializations" are
// the inverse relation. Each list is sorted ascending, and the pool is
// packed canonically: per signal, gen list then spec list, in signal order.
inline constexpr size_t kLatticeNavRecordBytes = 16;
inline constexpr size_t kLatticeNavGenOffset = 0;
inline constexpr size_t kLatticeNavGenCount = 4;
inline constexpr size_t kLatticeNavSpecOffset = 8;
inline constexpr size_t kLatticeNavSpecCount = 12;

inline constexpr size_t kItemIdPoolElemBytes = 4;
inline constexpr size_t kPostingPoolElemBytes = 4;
inline constexpr size_t kReportIdPoolElemBytes = 8;
inline constexpr size_t kLatticeEdgePoolElemBytes = 4;

}  // namespace maras::serve

#endif  // MARAS_SERVE_SNAPSHOT_FORMAT_H_
