#include "study/user_study.h"

#include <algorithm>
#include <map>
#include <numeric>

namespace maras::study {

namespace {

// Applies Gaussian perception noise to every displayed value of a spec and
// returns the participant's perceived exclusiveness score.
double PerceivedScore(const viz::GlyphSpec& spec, double noise,
                      const core::ExclusivenessOptions& scoring,
                      maras::Rng* rng) {
  auto perceive = [&](double v) {
    double p = v + rng->Gaussian() * noise;
    return std::clamp(p, 0.0, 1.0);
  };
  double target = perceive(spec.target_value);
  std::vector<std::vector<double>> levels;
  levels.reserve(spec.levels.size());
  for (const auto& level : spec.levels) {
    std::vector<double> perceived;
    perceived.reserve(level.size());
    for (double v : level) perceived.push_back(perceive(v));
    levels.push_back(std::move(perceived));
  }
  return core::ExclusivenessFromValues(target, levels, scoring);
}

}  // namespace

size_t UserStudySimulator::IntegrationElements(const viz::GlyphSpec& spec,
                                               VisualEncoding encoding) {
  if (encoding == VisualEncoding::kBarChart) {
    // Every bar must be scanned: the target plus each contextual rule.
    size_t bars = 1;
    for (const auto& level : spec.levels) bars += level.size();
    return bars;
  }
  // Glyph: holistic read per cardinality ring.
  return spec.levels.size() + 1;
}

double UserStudySimulator::DecisionSeconds(const StudyQuestion& question,
                                            VisualEncoding encoding) {
  // Orientation cost per candidate plus a read cost per integrated value.
  constexpr double kOrientSeconds = 1.2;
  constexpr double kPerValueSeconds = 0.45;
  double seconds = 0.0;
  for (const viz::GlyphSpec& spec : question.candidates) {
    seconds += kOrientSeconds +
               kPerValueSeconds *
                   static_cast<double>(IntegrationElements(spec, encoding));
  }
  return seconds;
}

bool UserStudySimulator::AnswerQuestion(const StudyQuestion& question,
                                        VisualEncoding encoding,
                                        maras::Rng* rng) const {
  const EncodingModel& model = encoding == VisualEncoding::kBarChart
                                   ? config_.barchart
                                   : config_.glyph;
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(question.candidates.size());
  for (size_t i = 0; i < question.candidates.size(); ++i) {
    const viz::GlyphSpec& spec = question.candidates[i];
    double noise =
        model.base_noise +
        model.per_element_noise *
            static_cast<double>(IntegrationElements(spec, encoding));
    scored.emplace_back(
        PerceivedScore(spec, noise, config_.scoring, rng), i);
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  const size_t k = question.correct_indices.size();
  std::vector<size_t> picks;
  for (size_t i = 0; i < k && i < scored.size(); ++i) {
    picks.push_back(scored[i].second);
  }
  std::sort(picks.begin(), picks.end());
  std::vector<size_t> expected = question.correct_indices;
  std::sort(expected.begin(), expected.end());
  return picks == expected;
}

StudyOutcome UserStudySimulator::Run(
    const std::vector<StudyQuestion>& questions) const {
  StudyOutcome outcome;
  maras::Rng rng(config_.seed);
  for (const StudyQuestion& question : questions) {
    QuestionOutcome q;
    q.name = question.name;
    q.drugs_per_rule = question.drugs_per_rule;
    size_t glyph_correct = 0;
    size_t bar_correct = 0;
    for (size_t p = 0; p < config_.participants; ++p) {
      if (AnswerQuestion(question, VisualEncoding::kContextualGlyph, &rng)) {
        ++glyph_correct;
      }
      if (AnswerQuestion(question, VisualEncoding::kBarChart, &rng)) {
        ++bar_correct;
      }
    }
    const double denom = static_cast<double>(config_.participants);
    q.glyph_accuracy = static_cast<double>(glyph_correct) / denom;
    q.barchart_accuracy = static_cast<double>(bar_correct) / denom;
    q.glyph_seconds =
        DecisionSeconds(question, VisualEncoding::kContextualGlyph);
    q.barchart_seconds =
        DecisionSeconds(question, VisualEncoding::kBarChart);
    outcome.questions.push_back(std::move(q));
  }
  return outcome;
}

double StudyOutcome::AccuracyForSize(size_t drugs,
                                     VisualEncoding encoding) const {
  double sum = 0.0;
  size_t count = 0;
  for (const QuestionOutcome& q : questions) {
    if (q.drugs_per_rule != drugs) continue;
    sum += encoding == VisualEncoding::kBarChart ? q.barchart_accuracy
                                                 : q.glyph_accuracy;
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double StudyOutcome::MeanSeconds(VisualEncoding encoding) const {
  if (questions.empty()) return 0.0;
  double sum = 0.0;
  for (const QuestionOutcome& q : questions) {
    sum += encoding == VisualEncoding::kBarChart ? q.barchart_seconds
                                                 : q.glyph_seconds;
  }
  return sum / static_cast<double>(questions.size());
}

std::vector<StudyQuestion> BuildQuestions(
    const std::vector<core::RankedMcac>& ranked,
    const mining::ItemDictionary& items, size_t decoys, uint64_t seed) {
  // Pool the ranked clusters by antecedent size, preserving rank order.
  std::map<size_t, std::vector<const core::RankedMcac*>> by_size;
  for (const core::RankedMcac& r : ranked) {
    by_size[r.mcac.target.drugs.size()].push_back(&r);
  }
  std::vector<StudyQuestion> questions;
  maras::Rng rng(seed);
  for (const auto& [size, pool] : by_size) {
    if (pool.size() < 3) continue;
    const size_t n_decoys = std::min(decoys, pool.size() - 1);
    StudyQuestion question;
    question.drugs_per_rule = size;
    question.name =
        "top-" + std::to_string(size) + "-drug cluster among " +
        std::to_string(n_decoys + 1);
    // Correct answer: the top-ranked cluster. Decoys fan out over the
    // ranking, starting with the runner-up (hardest) down to the bottom.
    std::vector<const core::RankedMcac*> chosen;
    chosen.push_back(pool.front());
    for (size_t i = 0; i < n_decoys; ++i) {
      size_t idx =
          n_decoys == 1
              ? pool.size() - 1
              : 1 + (i * (pool.size() - 2)) / (n_decoys - 1);
      chosen.push_back(pool[idx]);
    }
    // Shuffle presentation order deterministically.
    std::vector<size_t> order(chosen.size());
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(&order);
    for (size_t pos = 0; pos < order.size(); ++pos) {
      const core::RankedMcac* r = chosen[order[pos]];
      question.candidates.push_back(viz::GlyphSpecFromMcac(r->mcac, items));
      if (order[pos] == 0) question.correct_indices.push_back(pos);
    }
    questions.push_back(std::move(question));
  }
  return questions;
}

}  // namespace maras::study
