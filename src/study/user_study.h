#ifndef MARAS_STUDY_USER_STUDY_H_
#define MARAS_STUDY_USER_STUDY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/exclusiveness.h"
#include "core/ranking.h"
#include "util/random.h"
#include "viz/glyph.h"

namespace maras::study {

// ---------------------------------------------------------------------------
// Simulated replacement for the paper's 50-participant user study
// (Section 5.4.1 / Appendix A). The paper measured how accurately people
// pick the most interesting drug interaction when MCACs are shown as
// Contextual Glyphs vs. bar charts. We model the perceptual channel instead
// of recruiting humans:
//
//  * Each displayed value is perceived with zero-mean Gaussian noise.
//  * Bar charts encode by length/position — accurate per bar
//    (Cleveland–McGill) — but answering requires scanning and integrating
//    every bar across all candidate panels, so effective noise grows with
//    the total number of bars in the question.
//  * Contextual glyphs encode by area/arc distance — noisier per element —
//    but the big-circle/small-sectors gestalt is read holistically, so
//    effective noise grows only with the number of cardinality levels.
//
// A simulated participant scores each candidate's perceived values with the
// exclusiveness formula and picks the top k. This reproduces the *shape* of
// Fig. 5.2 (glyphs beat bar charts, most clearly for 4-drug clusters where
// a bar-chart question carries 15 bars per candidate).
// ---------------------------------------------------------------------------

enum class VisualEncoding { kContextualGlyph, kBarChart };

// Perceptual noise parameters for one encoding: effective per-value noise
// is `base_noise + per_element_noise * integration_elements(question)`.
struct EncodingModel {
  double base_noise = 0.03;
  double per_element_noise = 0.01;
};

// One study question (Appendix A): several candidate MCACs of the same
// antecedent size; the participant must pick the `answer_count` most
// interesting (top-exclusiveness) candidates.
struct StudyQuestion {
  std::string name;
  std::vector<viz::GlyphSpec> candidates;
  std::vector<size_t> correct_indices;  // indices of the true top answers
  size_t drugs_per_rule = 2;
};

struct StudyConfig {
  size_t participants = 50;
  uint64_t seed = 4251;
  // Calibrated so effective noise is: glyph 0.056/0.064/0.072 and bar chart
  // 0.068/0.132/0.260 for 2/3/4-drug clusters (3/7/15 bars) — per-element
  // decoding is cheaper on bars, but integration cost dominates as the bar
  // count grows.
  EncodingModel glyph{.base_noise = 0.04, .per_element_noise = 0.008};
  EncodingModel barchart{.base_noise = 0.02, .per_element_noise = 0.016};
  core::ExclusivenessOptions scoring;
};

struct QuestionOutcome {
  std::string name;
  size_t drugs_per_rule = 0;
  double glyph_accuracy = 0.0;     // fraction of participants fully correct
  double barchart_accuracy = 0.0;
  // Modeled decision time (Hick-style linear scan cost): a fixed
  // orientation cost plus a per-displayed-value read cost summed over all
  // candidates. Backs the paper's "more faster" claim (Section 5.4.1).
  double glyph_seconds = 0.0;
  double barchart_seconds = 0.0;
};

struct StudyOutcome {
  std::vector<QuestionOutcome> questions;

  // Mean accuracy over questions with the given antecedent size — the bars
  // of Fig. 5.2.
  double AccuracyForSize(size_t drugs, VisualEncoding encoding) const;

  // Mean modeled decision time over all questions.
  double MeanSeconds(VisualEncoding encoding) const;
};

class UserStudySimulator {
 public:
  explicit UserStudySimulator(StudyConfig config) : config_(config) {}

  StudyOutcome Run(const std::vector<StudyQuestion>& questions) const;

  // Number of values a participant must integrate for one candidate under
  // an encoding (drives the noise level). Exposed for tests.
  static size_t IntegrationElements(const viz::GlyphSpec& spec,
                                    VisualEncoding encoding);

  // Modeled decision time for a whole question under an encoding.
  static double DecisionSeconds(const StudyQuestion& question,
                                VisualEncoding encoding);

 private:
  // One participant answers one question; returns true when their top-k
  // picks equal the correct set.
  bool AnswerQuestion(const StudyQuestion& question, VisualEncoding encoding,
                      maras::Rng* rng) const;

  StudyConfig config_;
};

// Builds the appendix-style questions from ranked MCAC pools: for each
// antecedent size with at least three clusters, the top-ranked cluster plus
// up to `decoys` others spread across the ranking — the first decoy is the
// runner-up (a genuinely hard distractor), the rest fan out toward the
// bottom (the appendix's "non-interesting groups") — shuffled
// deterministically.
std::vector<StudyQuestion> BuildQuestions(
    const std::vector<core::RankedMcac>& ranked,
    const mining::ItemDictionary& items, size_t decoys, uint64_t seed);

}  // namespace maras::study

#endif  // MARAS_STUDY_USER_STUDY_H_
