#ifndef MARAS_TEXT_EDIT_DISTANCE_H_
#define MARAS_TEXT_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace maras::text {

// Levenshtein distance (insert/delete/substitute, unit costs).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

// Damerau–Levenshtein distance (adds adjacent transposition), the classic
// model for typing errors in drug-name data entry.
size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b);

// Damerau–Levenshtein with early exit: returns any value > max_distance as
// soon as the distance provably exceeds max_distance. Used by the dictionary
// corrector, where most candidates are far away.
size_t BoundedDamerauLevenshtein(std::string_view a, std::string_view b,
                                 size_t max_distance);

// Normalized similarity in [0, 1]: 1 − dist / max(|a|, |b|); 1.0 for two
// empty strings.
double Similarity(std::string_view a, std::string_view b);

}  // namespace maras::text

#endif  // MARAS_TEXT_EDIT_DISTANCE_H_
