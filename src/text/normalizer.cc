#include "text/normalizer.h"

#include <array>
#include <cctype>
#include <vector>

#include "util/string_util.h"

namespace maras::text {

namespace {

constexpr std::array<std::string_view, 18> kFormTokens = {
    "TABLET",   "TABLETS", "TAB",      "CAPSULE",  "CAPSULES", "CAP",
    "INJECTION", "INJ",    "SOLUTION", "SYRUP",    "CREAM",    "OINTMENT",
    "PATCH",    "SPRAY",   "DROPS",    "SUSPENSION", "UNKNOWN", "NOS",
};

// "10MG", "0.5ML", "250MCG", "100 MG" (as a single token "100MG"), "5%", ...
bool LooksLikeDoseToken(std::string_view token) {
  size_t i = 0;
  bool saw_digit = false;
  while (i < token.size() &&
         (std::isdigit(static_cast<unsigned char>(token[i])) ||
          token[i] == '.')) {
    saw_digit = saw_digit || std::isdigit(static_cast<unsigned char>(token[i]));
    ++i;
  }
  if (!saw_digit) return false;
  std::string_view unit = token.substr(i);
  return unit.empty() || unit == "MG" || unit == "MCG" || unit == "G" ||
         unit == "ML" || unit == "L" || unit == "%" || unit == "IU" ||
         unit == "UNITS";
}

}  // namespace

bool IsDoseOrFormToken(std::string_view token) {
  if (LooksLikeDoseToken(token)) return true;
  for (std::string_view form : kFormTokens) {
    if (token == form) return true;
  }
  return false;
}

std::string NormalizeName(std::string_view raw,
                          const NormalizerOptions& options) {
  std::string s(maras::StripWhitespace(raw));
  if (options.uppercase) s = maras::ToUpperAscii(s);
  if (options.strip_punctuation) {
    for (char& c : s) {
      switch (c) {
        case '-':
        case '_':
        case '/':
        case ',':
        case ';':
        case ':':
        case '(':
        case ')':
        case '[':
        case ']':
        case '.':
        case '*':
          c = ' ';
          break;
        default:
          break;
      }
    }
  }
  if (options.collapse_whitespace || options.strip_punctuation) {
    s = maras::CollapseWhitespace(s);
  }
  if (options.strip_dose_tokens) {
    std::vector<std::string> tokens = maras::Split(s, ' ');
    // Drop dose/form tokens, but never empty the name entirely.
    std::vector<std::string> kept;
    for (auto& t : tokens) {
      if (t.empty()) continue;
      if (!IsDoseOrFormToken(t)) kept.push_back(std::move(t));
    }
    if (!kept.empty()) s = maras::Join(kept, ' ');
  }
  return s;
}

}  // namespace maras::text
