#include "text/dictionary.h"

#include "text/edit_distance.h"

namespace maras::text {

void Dictionary::AddCanonical(std::string_view term) {
  std::string key(term);
  if (index_.count(key) > 0) return;
  index_[key] = canonical_.size();
  by_length_[key.size()].push_back(canonical_.size());
  canonical_.push_back(std::move(key));
}

maras::Status Dictionary::AddAlias(std::string_view alias,
                                   std::string_view canonical) {
  if (alias == canonical) {
    return maras::Status::InvalidArgument("alias equals canonical: " +
                                          std::string(alias));
  }
  AddCanonical(canonical);
  aliases_[std::string(alias)] = std::string(canonical);
  return maras::Status::OK();
}

bool Dictionary::Contains(std::string_view term) const {
  return index_.count(std::string(term)) > 0;
}

Dictionary::Match Dictionary::Resolve(std::string_view term,
                                      size_t max_edit_distance) const {
  Match match;
  std::string key(term);
  if (auto it = index_.find(key); it != index_.end()) {
    match.canonical = canonical_[it->second];
    match.kind = MatchKind::kExact;
    return match;
  }
  if (auto it = aliases_.find(key); it != aliases_.end()) {
    match.canonical = it->second;
    match.kind = MatchKind::kAlias;
    return match;
  }
  if (max_edit_distance == 0) return match;

  size_t best_distance = max_edit_distance + 1;
  const std::string* best_term = nullptr;
  const size_t len = key.size();
  const size_t lo = len > max_edit_distance ? len - max_edit_distance : 0;
  const size_t hi = len + max_edit_distance;
  for (size_t bucket = lo; bucket <= hi; ++bucket) {
    auto it = by_length_.find(bucket);
    if (it == by_length_.end()) continue;
    for (size_t idx : it->second) {
      const std::string& candidate = canonical_[idx];
      size_t d = BoundedDamerauLevenshtein(key, candidate, max_edit_distance);
      if (d < best_distance ||
          (d == best_distance && best_term != nullptr &&
           candidate < *best_term)) {
        best_distance = d;
        best_term = &candidate;
      }
    }
  }
  if (best_term != nullptr && best_distance <= max_edit_distance) {
    match.canonical = *best_term;
    match.kind = MatchKind::kFuzzy;
    match.distance = best_distance;
  }
  return match;
}

}  // namespace maras::text
