#ifndef MARAS_TEXT_NORMALIZER_H_
#define MARAS_TEXT_NORMALIZER_H_

#include <string>
#include <string_view>

namespace maras::text {

// Options controlling drug/ADR name normalization. Defaults match the
// cleaning the paper applies to FAERS drug names (Section 5.2): uppercase,
// strip punctuation and dose decorations, collapse whitespace.
struct NormalizerOptions {
  bool uppercase = true;
  // Replace '-', '_', '/', ',' and similar separators with a space.
  bool strip_punctuation = true;
  // Remove trailing dosage/form decorations such as "10MG", "TABLET(S)",
  // "CAPSULE", "(UNKNOWN)" that FAERS drug strings carry.
  bool strip_dose_tokens = true;
  bool collapse_whitespace = true;
};

// Canonicalizes a raw verbatim name. Pure function of (input, options).
std::string NormalizeName(std::string_view raw,
                          const NormalizerOptions& options = {});

// True when `token` looks like a dosage or form token ("10MG", "0.5ML",
// "TABLET", "CAPSULES", "INJECTION", ...).
bool IsDoseOrFormToken(std::string_view token);

}  // namespace maras::text

#endif  // MARAS_TEXT_NORMALIZER_H_
