#ifndef MARAS_TEXT_PHONETIC_H_
#define MARAS_TEXT_PHONETIC_H_

#include <string>
#include <string_view>

namespace maras::text {

// Phonetic encoding for drug-name matching. Regulators screen for
// sound-alike drug-name confusion (FDA's POCA system); in report cleaning a
// phonetic match catches misspellings that edit distance misses because the
// reporter spelled the *sound* ("ZANTACK", "SELEBREX"). Classic American
// Soundex over the letters of the name: first letter kept, subsequent
// consonants mapped to digit classes, vowels dropped, runs collapsed,
// padded/truncated to four characters ("ROBERT" -> "R163").
//
// Non-alphabetic characters are ignored; an input without any letters
// encodes to the empty string.
std::string Soundex(std::string_view name);

// True when both names are non-empty-encoding and encode identically.
bool SoundsAlike(std::string_view a, std::string_view b);

}  // namespace maras::text

#endif  // MARAS_TEXT_PHONETIC_H_
