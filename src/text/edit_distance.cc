#include "text/edit_distance.h"

#include <algorithm>
#include <vector>

namespace maras::text {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<size_t> prev(n + 1), cur(n + 1);
  for (size_t i = 0; i <= n; ++i) prev[i] = i;
  for (size_t j = 1; j <= m; ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= n; ++i) {
      size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

size_t DamerauLevenshteinDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  // Three rolling rows: two-back (for transpositions), previous, current.
  std::vector<size_t> two_back(m + 1), prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        cur[j] = std::min(cur[j], two_back[j - 2] + 1);
      }
    }
    std::swap(two_back, prev);
    std::swap(prev, cur);
  }
  return prev[m];
}

size_t BoundedDamerauLevenshtein(std::string_view a, std::string_view b,
                                 size_t max_distance) {
  // Quick length-difference bound.
  size_t diff = a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
  if (diff > max_distance) return max_distance + 1;
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<size_t> two_back(m + 1), prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    size_t row_min = cur[0];
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        cur[j] = std::min(cur[j], two_back[j - 2] + 1);
      }
      row_min = std::min(row_min, cur[j]);
    }
    if (row_min > max_distance) return max_distance + 1;  // early exit
    std::swap(two_back, prev);
    std::swap(prev, cur);
  }
  return prev[m];
}

double Similarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  size_t dist = DamerauLevenshteinDistance(a, b);
  return 1.0 - static_cast<double>(dist) / static_cast<double>(longest);
}

}  // namespace maras::text
