#include "text/phonetic.h"

#include <cctype>

namespace maras::text {

namespace {

// Soundex digit class of an uppercase letter; '0' marks vowels/ignored
// letters (A E I O U Y H W).
char DigitOf(char c) {
  switch (c) {
    case 'B':
    case 'F':
    case 'P':
    case 'V':
      return '1';
    case 'C':
    case 'G':
    case 'J':
    case 'K':
    case 'Q':
    case 'S':
    case 'X':
    case 'Z':
      return '2';
    case 'D':
    case 'T':
      return '3';
    case 'L':
      return '4';
    case 'M':
    case 'N':
      return '5';
    case 'R':
      return '6';
    default:
      return '0';
  }
}

bool IsSeparatorLetter(char c) { return c == 'H' || c == 'W'; }

}  // namespace

std::string Soundex(std::string_view name) {
  // Collect uppercase letters only.
  std::string letters;
  for (char c : name) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      letters += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  if (letters.empty()) return "";

  std::string code(1, letters[0]);
  char previous_digit = DigitOf(letters[0]);
  for (size_t i = 1; i < letters.size() && code.size() < 4; ++i) {
    char c = letters[i];
    char digit = DigitOf(c);
    if (digit == '0') {
      // H and W are transparent (the previous digit survives across them);
      // vowels reset the run so a repeated class re-emits.
      if (!IsSeparatorLetter(c)) previous_digit = '0';
      continue;
    }
    if (digit != previous_digit) {
      code += digit;
    }
    previous_digit = digit;
  }
  code.append(4 - code.size(), '0');
  return code;
}

bool SoundsAlike(std::string_view a, std::string_view b) {
  std::string ca = Soundex(a);
  return !ca.empty() && ca == Soundex(b);
}

}  // namespace maras::text
