#ifndef MARAS_TEXT_DICTIONARY_H_
#define MARAS_TEXT_DICTIONARY_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace maras::text {

// A vocabulary of canonical names plus synonym and fuzzy lookup, used to map
// raw FAERS drug/ADR strings onto canonical terms. Corrects:
//   * synonyms (brand name -> canonical generic), via an explicit alias map;
//   * misspellings, via bounded Damerau–Levenshtein search over the
//     vocabulary, bucketed by length so the scan stays near-linear.
class Dictionary {
 public:
  Dictionary() = default;

  // Registers a canonical term. Idempotent.
  void AddCanonical(std::string_view term);

  // Registers `alias` as a synonym of `canonical`; the canonical term is
  // added implicitly. Returns InvalidArgument when alias == canonical.
  maras::Status AddAlias(std::string_view alias, std::string_view canonical);

  size_t size() const { return canonical_.size(); }
  bool Contains(std::string_view term) const;

  const std::vector<std::string>& canonical_terms() const {
    return canonical_;
  }

  // Resolution result with provenance, so preprocessing can report how many
  // names were corrected vs. passed through.
  enum class MatchKind { kExact, kAlias, kFuzzy, kNone };
  struct Match {
    std::string canonical;
    MatchKind kind = MatchKind::kNone;
    size_t distance = 0;  // edit distance for kFuzzy, 0 otherwise
  };

  // Resolves `term`: exact hit, then alias, then the nearest vocabulary
  // entry within `max_edit_distance` (ties broken toward the
  // lexicographically smaller term for determinism). kNone when nothing is
  // within range.
  Match Resolve(std::string_view term, size_t max_edit_distance) const;

 private:
  std::vector<std::string> canonical_;
  std::unordered_map<std::string, size_t> index_;   // canonical -> position
  std::unordered_map<std::string, std::string> aliases_;
  // Length bucket -> canonical indices, to bound the fuzzy scan.
  std::unordered_map<size_t, std::vector<size_t>> by_length_;
};

}  // namespace maras::text

#endif  // MARAS_TEXT_DICTIONARY_H_
