#include "viz/linechart.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"
#include "viz/color.h"

namespace maras::viz {

namespace {

constexpr double kMarginLeft = 52.0;
constexpr double kMarginBottom = 34.0;
constexpr double kMarginTop = 30.0;
constexpr double kMarginRight = 14.0;

Color SeriesColor(size_t index) {
  static const Color palette[] = {
      {214, 96, 77},   // warm red
      {8, 81, 156},    // blue
      {35, 139, 69},   // green
      {117, 107, 177}, // purple
      {230, 151, 0},   // orange
      {102, 102, 102}, // gray
  };
  return palette[index % 6];
}

}  // namespace

SvgDocument LineChartRenderer::Render(
    const std::vector<std::string>& categories,
    const std::vector<Series>& series, const std::string& title) const {
  SvgDocument doc(options_.width, options_.height);
  double y_min = options_.y_min;
  double y_max = options_.y_max;
  if (y_max <= y_min) {
    y_min = 0.0;
    y_max = 0.0;
    for (const Series& s : series) {
      for (double v : s.values) {
        if (std::isfinite(v)) {
          y_max = std::max(y_max, v);
          y_min = std::min(y_min, v);
        }
      }
    }
    if (y_max == y_min) y_max = y_min + 1.0;
    y_max += (y_max - y_min) * 0.05;  // head room
  }

  const double x0 = kMarginLeft;
  const double y0 = options_.height - kMarginBottom;
  const double plot_w = options_.width - kMarginLeft - kMarginRight;
  const double plot_h = y0 - kMarginTop;

  // Axes, grid and ticks.
  SvgDocument::Style axis;
  axis.stroke = AxisColor().ToHex();
  axis.stroke_width = 1.0;
  doc.Line(x0, kMarginTop, x0, y0, axis);
  doc.Line(x0, y0, options_.width - kMarginRight, y0, axis);
  SvgDocument::Style grid;
  grid.stroke = "#DDDDDD";
  grid.stroke_width = 0.5;
  SvgDocument::TextStyle tick;
  tick.font_size = 9.0;
  tick.anchor = "end";
  for (int i = 0; i <= 4; ++i) {
    double frac = static_cast<double>(i) / 4.0;
    double y = y0 - frac * plot_h;
    doc.Line(x0, y, options_.width - kMarginRight, y, grid);
    doc.Text(x0 - 4.0, y + 3.0,
             maras::FormatDouble(y_min + frac * (y_max - y_min), 2), tick);
  }
  SvgDocument::TextStyle label;
  label.font_size = 10.0;
  label.anchor = "middle";
  if (!options_.y_label.empty()) {
    doc.Text(20.0, kMarginTop - 10.0, options_.y_label, label);
  }

  const size_t n_cat = categories.size();
  auto x_at = [&](size_t c) {
    if (n_cat <= 1) return x0 + plot_w / 2.0;
    return x0 + plot_w * static_cast<double>(c) /
                    static_cast<double>(n_cat - 1);
  };
  auto y_at = [&](double v) {
    double frac = (v - y_min) / (y_max - y_min);
    return y0 - std::clamp(frac, 0.0, 1.0) * plot_h;
  };

  SvgDocument::TextStyle cat;
  cat.font_size = 9.5;
  cat.anchor = "middle";
  for (size_t c = 0; c < n_cat; ++c) {
    doc.Text(x_at(c), y0 + 14.0, categories[c], cat);
  }

  for (size_t s = 0; s < series.size(); ++s) {
    Color color = SeriesColor(s);
    SvgDocument::Style line;
    line.stroke = color.ToHex();
    line.stroke_width = 1.8;
    // Draw segments between consecutive finite points.
    for (size_t c = 1; c < series[s].values.size() && c < n_cat; ++c) {
      double a = series[s].values[c - 1];
      double b = series[s].values[c];
      if (!std::isfinite(a) || !std::isfinite(b)) continue;
      doc.Line(x_at(c - 1), y_at(a), x_at(c), y_at(b), line);
    }
    if (options_.show_markers) {
      SvgDocument::Style marker;
      marker.fill = color.ToHex();
      for (size_t c = 0; c < series[s].values.size() && c < n_cat; ++c) {
        double v = series[s].values[c];
        if (std::isfinite(v)) doc.Circle(x_at(c), y_at(v), 2.6, marker);
      }
    }
    // Legend.
    SvgDocument::Style chip;
    chip.fill = color.ToHex();
    double lx = x0 + 6.0 + static_cast<double>(s) * 140.0;
    doc.Rect(lx, 8.0, 10.0, 10.0, chip);
    SvgDocument::TextStyle lt;
    lt.font_size = 10.0;
    doc.Text(lx + 14.0, 17.0, series[s].name, lt);
  }

  if (!title.empty()) {
    SvgDocument::TextStyle tt;
    tt.font_size = 11.0;
    tt.anchor = "middle";
    tt.bold = true;
    doc.Text(options_.width / 2.0, options_.height - 6.0, title, tt);
  }
  return doc;
}

}  // namespace maras::viz
