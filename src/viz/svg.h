#ifndef MARAS_VIZ_SVG_H_
#define MARAS_VIZ_SVG_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace maras::viz {

// Minimal SVG document builder — enough vector-graphics surface for the
// MARAS views (contextual glyphs, bar charts, panoramagram). Elements are
// appended in paint order; Render() emits a standalone SVG file.
class SvgDocument {
 public:
  SvgDocument(double width, double height);

  // Common presentation attributes; empty string omits the attribute.
  struct Style {
    std::string fill = "none";
    std::string stroke;
    double stroke_width = 0.0;
    double opacity = 1.0;
  };

  void Circle(double cx, double cy, double r, const Style& style);
  void Rect(double x, double y, double w, double h, const Style& style);
  void Line(double x1, double y1, double x2, double y2, const Style& style);
  // Raw path data (the glyph renderer builds arc-sector paths).
  void Path(const std::string& d, const Style& style);

  struct TextStyle {
    double font_size = 12.0;
    std::string fill = "#333333";
    // "start", "middle" or "end".
    std::string anchor = "start";
    bool bold = false;
  };
  void Text(double x, double y, const std::string& content,
            const TextStyle& style);

  // Groups subsequent elements under a translate transform until EndGroup.
  void BeginGroup(double tx, double ty);
  void EndGroup();

  // Embeds another document's content at (tx, ty), scaled — the compositor
  // used to lay out multi-panel figures (e.g. the user-study question
  // sheets). The embedded document's own open groups are balanced first.
  void Embed(const SvgDocument& other, double tx, double ty,
             double scale = 1.0);

  double width() const { return width_; }
  double height() const { return height_; }

  std::string Render() const;
  maras::Status WriteFile(const std::string& path) const;

 private:
  static std::string Escape(const std::string& text);
  std::string StyleAttrs(const Style& style) const;

  double width_;
  double height_;
  std::vector<std::string> elements_;
  int open_groups_ = 0;
};

}  // namespace maras::viz

#endif  // MARAS_VIZ_SVG_H_
