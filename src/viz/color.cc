#include "viz/color.h"

#include <algorithm>
#include <cstdio>

namespace maras::viz {

std::string Color::ToHex() const {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02X%02X%02X", r, g, b);
  return buf;
}

Color Color::Mix(const Color& other, double t) const {
  t = std::clamp(t, 0.0, 1.0);
  auto lerp = [t](uint8_t from, uint8_t to) {
    return static_cast<uint8_t>(from + (to - from) * t + 0.5);
  };
  return Color{lerp(r, other.r), lerp(g, other.g), lerp(b, other.b)};
}

bool operator==(const Color& a, const Color& b) {
  return a.r == b.r && a.g == b.g && a.b == b.b;
}

Color LevelColor(size_t level, size_t max_level) {
  // Light steel blue -> dark navy as cardinality grows.
  const Color light{198, 219, 239};
  const Color dark{8, 48, 107};
  if (max_level <= 1) return dark;
  double t = static_cast<double>(level - 1) /
             static_cast<double>(max_level - 1);
  return light.Mix(dark, t);
}

Color TargetRuleColor() { return Color{214, 96, 77}; }   // warm red
Color AxisColor() { return Color{102, 102, 102}; }
Color BackgroundColor() { return Color{255, 255, 255}; }

}  // namespace maras::viz
