#ifndef MARAS_VIZ_BARCHART_H_
#define MARAS_VIZ_BARCHART_H_

#include <string>
#include <vector>

#include "viz/glyph.h"
#include "viz/svg.h"

namespace maras::viz {

// The baseline MCAC visualization the user study compares against
// (Fig. 5.3): a grouped bar chart with one bar per rule — the target rule
// first, then every contextual rule grouped by cardinality level — bar
// height encoding the measure value.
struct BarChartOptions {
  double width = 420.0;
  double height = 240.0;
  double max_value = 1.0;  // y-axis top (1.0 for confidence)
  std::string y_label = "confidence";
  bool show_values = false;
};

class BarChartRenderer {
 public:
  explicit BarChartRenderer(BarChartOptions options = {})
      : options_(options) {}

  // Renders the same GlyphSpec a Contextual Glyph displays; the two views
  // are information-equivalent by construction (user-study requirement).
  SvgDocument Render(const GlyphSpec& spec) const;

  // A simple generic grouped series chart, used for Fig. 5.2 (user-study
  // accuracy) and other experiment figures.
  struct Series {
    std::string name;
    std::vector<double> values;  // one per category
  };
  SvgDocument RenderGrouped(const std::vector<std::string>& categories,
                            const std::vector<Series>& series,
                            const std::string& title) const;

 private:
  BarChartOptions options_;
};

}  // namespace maras::viz

#endif  // MARAS_VIZ_BARCHART_H_
