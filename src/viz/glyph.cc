#include "viz/glyph.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"
#include "viz/color.h"

namespace maras::viz {

namespace {

// Converts a clock angle (0 = 12 o'clock, clockwise positive, radians) to
// SVG coordinates on a circle of radius r.
void ClockPoint(double cx, double cy, double r, double angle, double* x,
                double* y) {
  *x = cx + r * std::sin(angle);
  *y = cy - r * std::cos(angle);
}

double ClampValue(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

GlyphSpec GlyphSpecFromMcac(const core::Mcac& mcac,
                            const mining::ItemDictionary& items) {
  GlyphSpec spec;
  spec.target_value = mcac.target.confidence;
  spec.title = core::RuleToString(mcac.target, items);
  for (const auto& level : mcac.levels) {
    std::vector<double> values;
    values.reserve(level.size());
    for (const core::DrugAdrRule& rule : level) {
      values.push_back(rule.confidence);
      spec.sector_labels.push_back(items.Render(rule.drugs));
    }
    spec.levels.push_back(std::move(values));
  }
  return spec;
}

std::string AnnularSectorPath(double cx, double cy, double r0, double r1,
                              double a0, double a1) {
  double x0o, y0o, x1o, y1o, x0i, y0i, x1i, y1i;
  ClockPoint(cx, cy, r1, a0, &x0o, &y0o);
  ClockPoint(cx, cy, r1, a1, &x1o, &y1o);
  ClockPoint(cx, cy, r0, a1, &x1i, &y1i);
  ClockPoint(cx, cy, r0, a0, &x0i, &y0i);
  const int large_arc = (a1 - a0) > M_PI ? 1 : 0;
  auto n = [](double v) { return maras::FormatDouble(v, 2); };
  std::string d;
  d += "M " + n(x0o) + " " + n(y0o);
  d += " A " + n(r1) + " " + n(r1) + " 0 " + std::to_string(large_arc) +
       " 1 " + n(x1o) + " " + n(y1o);
  d += " L " + n(x1i) + " " + n(y1i);
  d += " A " + n(r0) + " " + n(r0) + " 0 " + std::to_string(large_arc) +
       " 0 " + n(x0i) + " " + n(y0i);
  d += " Z";
  return d;
}

void ContextualGlyphRenderer::Draw(SvgDocument* doc, double cx, double cy,
                                   const GlyphSpec& spec) const {
  const GlyphGeometry& g = geometry_;
  const size_t max_level = spec.levels.size();

  // Count sectors for the uniform angular layout.
  size_t total = 0;
  for (const auto& level : spec.levels) total += level.size();

  if (total > 0) {
    const double gap = g.sector_gap_degrees * M_PI / 180.0;
    const double span = (2.0 * M_PI) / static_cast<double>(total);
    size_t index = 0;
    for (size_t level_idx = 0; level_idx < spec.levels.size(); ++level_idx) {
      Color color = LevelColor(level_idx + 1, max_level);
      for (double value : spec.levels[level_idx]) {
        const double a0 = span * static_cast<double>(index) + gap / 2.0;
        const double a1 = span * static_cast<double>(index + 1) - gap / 2.0;
        const double r1 =
            g.radius_sector_base +
            ClampValue(value) * (g.radius_sector_max - g.radius_sector_base);
        SvgDocument::Style style;
        style.fill = color.ToHex();
        style.stroke = "#FFFFFF";
        style.stroke_width = 0.5;
        if (r1 > g.radius_sector_base + 0.01) {
          doc->Path(AnnularSectorPath(cx, cy, g.radius_sector_base, r1, a0,
                                      a1),
                    style);
        } else {
          // Zero-confidence context: draw a hairline arc so the sector's
          // existence stays visible.
          doc->Path(AnnularSectorPath(cx, cy, g.radius_sector_base,
                                      g.radius_sector_base + 1.0, a0, a1),
                    style);
        }
        ++index;
      }
    }
  }

  // Inner circle (target rule) on top.
  const double r_inner =
      g.radius_inner_min +
      ClampValue(spec.target_value) * (g.radius_inner_max - g.radius_inner_min);
  SvgDocument::Style inner;
  inner.fill = TargetRuleColor().ToHex();
  inner.stroke = "#FFFFFF";
  inner.stroke_width = 1.0;
  doc->Circle(cx, cy, r_inner, inner);
}

SvgDocument ContextualGlyphRenderer::Render(const GlyphSpec& spec) const {
  const double size = geometry_.radius_sector_max * 2.0 + 30.0;
  SvgDocument doc(size, size + 20.0);
  Draw(&doc, size / 2.0, size / 2.0, spec);
  if (!spec.title.empty()) {
    SvgDocument::TextStyle caption;
    caption.font_size = 10.0;
    caption.anchor = "middle";
    doc.Text(size / 2.0, size + 10.0, spec.title, caption);
  }
  return doc;
}

SvgDocument ContextualGlyphRenderer::RenderZoom(const GlyphSpec& spec) const {
  // Enlarged geometry plus a side legend listing each sector.
  GlyphGeometry big = geometry_;
  big.radius_inner_max *= 2.0;
  big.radius_inner_min *= 2.0;
  big.radius_sector_base *= 2.0;
  big.radius_sector_max *= 2.0;
  ContextualGlyphRenderer zoomed(big);

  size_t total = 0;
  for (const auto& level : spec.levels) total += level.size();
  const double glyph_extent = big.radius_sector_max * 2.0 + 40.0;
  const double legend_width = 360.0;
  const double height =
      std::max(glyph_extent + 40.0,
               40.0 + static_cast<double>(total + 1) * 18.0);
  SvgDocument doc(glyph_extent + legend_width, height);
  zoomed.Draw(&doc, glyph_extent / 2.0, glyph_extent / 2.0, spec);

  SvgDocument::TextStyle heading;
  heading.font_size = 13.0;
  heading.bold = true;
  doc.Text(glyph_extent, 24.0, spec.title.empty() ? "Rule cluster" : spec.title,
           heading);

  SvgDocument::TextStyle row;
  row.font_size = 11.0;
  double y = 48.0;
  doc.Text(glyph_extent, y,
           "target confidence = " +
               maras::FormatDouble(spec.target_value, 3),
           row);
  y += 18.0;
  size_t flat = 0;
  for (size_t level_idx = 0; level_idx < spec.levels.size(); ++level_idx) {
    for (double value : spec.levels[level_idx]) {
      std::string label = flat < spec.sector_labels.size()
                              ? spec.sector_labels[flat]
                              : ("context #" + std::to_string(flat + 1));
      // Color chip for the sector's level.
      SvgDocument::Style chip;
      chip.fill = LevelColor(level_idx + 1, spec.levels.size()).ToHex();
      doc.Rect(glyph_extent, y - 9.0, 10.0, 10.0, chip);
      doc.Text(glyph_extent + 16.0, y,
               label + "  conf = " + maras::FormatDouble(value, 3), row);
      y += 18.0;
      ++flat;
    }
  }
  return doc;
}

}  // namespace maras::viz
