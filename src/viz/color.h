#ifndef MARAS_VIZ_COLOR_H_
#define MARAS_VIZ_COLOR_H_

#include <cstdint>
#include <string>

namespace maras::viz {

struct Color {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;

  std::string ToHex() const;

  // Linear interpolation toward `other`, t ∈ [0, 1].
  Color Mix(const Color& other, double t) const;
};

bool operator==(const Color& a, const Color& b);

// Sequential palette for contextual-rule cardinality levels: "the darker
// the larger" the antecedent (Section 4). level is 1-based; max_level the
// number of levels in the glyph.
Color LevelColor(size_t level, size_t max_level);

// Fixed roles used across the MARAS views.
Color TargetRuleColor();   // inner circle
Color AxisColor();
Color BackgroundColor();

}  // namespace maras::viz

#endif  // MARAS_VIZ_COLOR_H_
