#include "viz/svg.h"

#include <sstream>

#include "util/delimited.h"
#include "util/string_util.h"

namespace maras::viz {

namespace {

std::string Num(double v) {
  // Two decimal places keeps files small and diffs stable.
  return maras::FormatDouble(v, 2);
}

}  // namespace

SvgDocument::SvgDocument(double width, double height)
    : width_(width), height_(height) {}

std::string SvgDocument::Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string SvgDocument::StyleAttrs(const Style& style) const {
  std::string out = " fill=\"" + (style.fill.empty() ? "none" : style.fill) +
                    "\"";
  if (!style.stroke.empty()) {
    out += " stroke=\"" + style.stroke + "\" stroke-width=\"" +
           Num(style.stroke_width) + "\"";
  }
  if (style.opacity < 1.0) {
    out += " opacity=\"" + Num(style.opacity) + "\"";
  }
  return out;
}

void SvgDocument::Circle(double cx, double cy, double r, const Style& style) {
  elements_.push_back("<circle cx=\"" + Num(cx) + "\" cy=\"" + Num(cy) +
                      "\" r=\"" + Num(r) + "\"" + StyleAttrs(style) + "/>");
}

void SvgDocument::Rect(double x, double y, double w, double h,
                       const Style& style) {
  elements_.push_back("<rect x=\"" + Num(x) + "\" y=\"" + Num(y) +
                      "\" width=\"" + Num(w) + "\" height=\"" + Num(h) +
                      "\"" + StyleAttrs(style) + "/>");
}

void SvgDocument::Line(double x1, double y1, double x2, double y2,
                       const Style& style) {
  elements_.push_back("<line x1=\"" + Num(x1) + "\" y1=\"" + Num(y1) +
                      "\" x2=\"" + Num(x2) + "\" y2=\"" + Num(y2) + "\"" +
                      StyleAttrs(style) + "/>");
}

void SvgDocument::Path(const std::string& d, const Style& style) {
  elements_.push_back("<path d=\"" + d + "\"" + StyleAttrs(style) + "/>");
}

void SvgDocument::Text(double x, double y, const std::string& content,
                       const TextStyle& style) {
  std::string attrs = " x=\"" + Num(x) + "\" y=\"" + Num(y) +
                      "\" font-size=\"" + Num(style.font_size) +
                      "\" fill=\"" + style.fill + "\" text-anchor=\"" +
                      style.anchor + "\" font-family=\"sans-serif\"";
  if (style.bold) attrs += " font-weight=\"bold\"";
  elements_.push_back("<text" + attrs + ">" + Escape(content) + "</text>");
}

void SvgDocument::BeginGroup(double tx, double ty) {
  elements_.push_back("<g transform=\"translate(" + Num(tx) + "," + Num(ty) +
                      ")\">");
  ++open_groups_;
}

void SvgDocument::EndGroup() {
  if (open_groups_ > 0) {
    elements_.push_back("</g>");
    --open_groups_;
  }
}

void SvgDocument::Embed(const SvgDocument& other, double tx, double ty,
                        double scale) {
  elements_.push_back("<g transform=\"translate(" + Num(tx) + "," + Num(ty) +
                      ") scale(" + Num(scale) + ")\">");
  for (const std::string& element : other.elements_) {
    elements_.push_back("  " + element);
  }
  // Balance any groups the other document left open.
  for (int i = 0; i < other.open_groups_; ++i) elements_.push_back("</g>");
  elements_.push_back("</g>");
}

std::string SvgDocument::Render() const {
  std::ostringstream out;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << Num(width_)
      << "\" height=\"" << Num(height_) << "\" viewBox=\"0 0 " << Num(width_)
      << " " << Num(height_) << "\">\n";
  for (const std::string& element : elements_) {
    out << "  " << element << "\n";
  }
  for (int i = 0; i < open_groups_; ++i) out << "  </g>\n";
  out << "</svg>\n";
  return out.str();
}

maras::Status SvgDocument::WriteFile(const std::string& path) const {
  return maras::AtomicWriteStringToFile(path, Render());
}

}  // namespace maras::viz
