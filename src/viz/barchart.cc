#include "viz/barchart.h"

#include <algorithm>

#include "util/string_util.h"
#include "viz/color.h"

namespace maras::viz {

namespace {

constexpr double kMarginLeft = 48.0;
constexpr double kMarginBottom = 36.0;
constexpr double kMarginTop = 28.0;
constexpr double kMarginRight = 12.0;

void DrawAxes(SvgDocument* doc, double width, double height, double max_value,
              const std::string& y_label) {
  SvgDocument::Style axis;
  axis.stroke = AxisColor().ToHex();
  axis.stroke_width = 1.0;
  const double x0 = kMarginLeft;
  const double y0 = height - kMarginBottom;
  doc->Line(x0, kMarginTop, x0, y0, axis);
  doc->Line(x0, y0, width - kMarginRight, y0, axis);

  SvgDocument::TextStyle tick;
  tick.font_size = 9.0;
  tick.anchor = "end";
  SvgDocument::Style grid;
  grid.stroke = "#DDDDDD";
  grid.stroke_width = 0.5;
  for (int i = 0; i <= 4; ++i) {
    double frac = static_cast<double>(i) / 4.0;
    double y = y0 - frac * (y0 - kMarginTop);
    doc->Line(x0, y, width - kMarginRight, y, grid);
    doc->Text(x0 - 4.0, y + 3.0, maras::FormatDouble(frac * max_value, 2),
              tick);
  }
  SvgDocument::TextStyle label;
  label.font_size = 10.0;
  label.anchor = "middle";
  doc->Text(14.0, kMarginTop - 8.0, y_label, label);
}

}  // namespace

SvgDocument BarChartRenderer::Render(const GlyphSpec& spec) const {
  SvgDocument doc(options_.width, options_.height);
  DrawAxes(&doc, options_.width, options_.height, options_.max_value,
           options_.y_label);

  size_t total_bars = 1;  // target
  for (const auto& level : spec.levels) total_bars += level.size();

  const double plot_w = options_.width - kMarginLeft - kMarginRight;
  const double y0 = options_.height - kMarginBottom;
  const double plot_h = y0 - kMarginTop;
  const double slot = plot_w / static_cast<double>(total_bars);
  const double bar_w = slot * 0.7;

  auto draw_bar = [&](size_t index, double value, const Color& color) {
    double clamped = std::clamp(value / options_.max_value, 0.0, 1.0);
    double h = clamped * plot_h;
    double x = kMarginLeft + slot * static_cast<double>(index) +
               (slot - bar_w) / 2.0;
    SvgDocument::Style style;
    style.fill = color.ToHex();
    doc.Rect(x, y0 - h, bar_w, h, style);
    if (options_.show_values) {
      SvgDocument::TextStyle vt;
      vt.font_size = 8.0;
      vt.anchor = "middle";
      doc.Text(x + bar_w / 2.0, y0 - h - 3.0, maras::FormatDouble(value, 2),
               vt);
    }
  };

  size_t index = 0;
  draw_bar(index++, spec.target_value, TargetRuleColor());
  for (size_t level_idx = 0; level_idx < spec.levels.size(); ++level_idx) {
    Color color = LevelColor(level_idx + 1, spec.levels.size());
    for (double value : spec.levels[level_idx]) {
      draw_bar(index++, value, color);
    }
  }

  if (!spec.title.empty()) {
    SvgDocument::TextStyle title;
    title.font_size = 11.0;
    title.anchor = "middle";
    title.bold = true;
    doc.Text(options_.width / 2.0, options_.height - 8.0, spec.title, title);
  }
  return doc;
}

SvgDocument BarChartRenderer::RenderGrouped(
    const std::vector<std::string>& categories,
    const std::vector<Series>& series, const std::string& title) const {
  SvgDocument doc(options_.width, options_.height);
  DrawAxes(&doc, options_.width, options_.height, options_.max_value,
           options_.y_label);

  const double plot_w = options_.width - kMarginLeft - kMarginRight;
  const double y0 = options_.height - kMarginBottom;
  const double plot_h = y0 - kMarginTop;
  const size_t n_cat = categories.size();
  const size_t n_ser = series.size();
  if (n_cat == 0 || n_ser == 0) return doc;
  const double group_w = plot_w / static_cast<double>(n_cat);
  const double bar_w = group_w * 0.8 / static_cast<double>(n_ser);

  for (size_t s = 0; s < n_ser; ++s) {
    // Alternate the target color and level colors for series identity.
    Color color = (s == 0) ? TargetRuleColor()
                           : LevelColor(s, std::max<size_t>(n_ser - 1, 1));
    for (size_t c = 0; c < n_cat && c < series[s].values.size(); ++c) {
      double value = series[s].values[c];
      double clamped = std::clamp(value / options_.max_value, 0.0, 1.0);
      double h = clamped * plot_h;
      double x = kMarginLeft + group_w * static_cast<double>(c) +
                 group_w * 0.1 + bar_w * static_cast<double>(s);
      SvgDocument::Style style;
      style.fill = color.ToHex();
      doc.Rect(x, y0 - h, bar_w, h, style);
      if (options_.show_values) {
        SvgDocument::TextStyle vt;
        vt.font_size = 8.0;
        vt.anchor = "middle";
        doc.Text(x + bar_w / 2.0, y0 - h - 3.0,
                 maras::FormatDouble(value, 1), vt);
      }
    }
    // Legend entry.
    SvgDocument::Style chip;
    chip.fill = color.ToHex();
    double lx = kMarginLeft + 8.0 + static_cast<double>(s) * 130.0;
    doc.Rect(lx, 8.0, 10.0, 10.0, chip);
    SvgDocument::TextStyle lt;
    lt.font_size = 10.0;
    doc.Text(lx + 14.0, 17.0, series[s].name, lt);
  }

  SvgDocument::TextStyle cat;
  cat.font_size = 10.0;
  cat.anchor = "middle";
  for (size_t c = 0; c < n_cat; ++c) {
    double x = kMarginLeft + group_w * (static_cast<double>(c) + 0.5);
    doc.Text(x, y0 + 16.0, categories[c], cat);
  }
  if (!title.empty()) {
    SvgDocument::TextStyle tt;
    tt.font_size = 11.0;
    tt.anchor = "middle";
    tt.bold = true;
    doc.Text(options_.width / 2.0, options_.height - 6.0, title, tt);
  }
  return doc;
}

}  // namespace maras::viz
