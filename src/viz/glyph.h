#ifndef MARAS_VIZ_GLYPH_H_
#define MARAS_VIZ_GLYPH_H_

#include <string>
#include <vector>

#include "core/mcac.h"
#include "mining/item_dictionary.h"
#include "viz/svg.h"

namespace maras::viz {

// The data a Contextual Glyph displays (Section 4, Fig. 4.1): the target
// rule's measure value (inner circle) and each contextual rule's value,
// grouped by antecedent cardinality and sorted descending within a level.
struct GlyphSpec {
  double target_value = 0.0;                 // in [0, 1] for confidence
  std::vector<std::vector<double>> levels;   // levels[k-1] = k-drug values
  std::string title;                         // caption under the glyph
  // Optional per-sector labels, flattened in layout order (level-major);
  // used by the zoom view. Empty = unlabeled.
  std::vector<std::string> sector_labels;
};

// Extracts a confidence-valued GlyphSpec from an MCAC, labeling each sector
// with the context rule's drug names.
GlyphSpec GlyphSpecFromMcac(const core::Mcac& mcac,
                            const mining::ItemDictionary& items);

struct GlyphGeometry {
  double radius_inner_max = 34.0;  // inner circle at value 1.0
  double radius_inner_min = 4.0;   // inner circle floor so it stays visible
  double radius_sector_base = 40.0;  // sectors start just outside the circle
  double radius_sector_max = 80.0;   // sector arc at value 1.0
  double sector_gap_degrees = 2.0;
};

// Renders a Contextual Glyph: inner circle diameter encodes the target
// value; circular sectors (one per contextual rule) start at 12 o'clock and
// proceed clockwise ordered by cardinality then value, colored darker for
// larger cardinality, with the arc distance encoding the rule's value.
// "The larger the inner circle and the smaller the outer [sectors], the
// higher the rank of the group."
class ContextualGlyphRenderer {
 public:
  explicit ContextualGlyphRenderer(GlyphGeometry geometry = {})
      : geometry_(geometry) {}

  // Draws the glyph centered at (cx, cy) into an existing document.
  void Draw(SvgDocument* doc, double cx, double cy,
            const GlyphSpec& spec) const;

  // Standalone glyph image.
  SvgDocument Render(const GlyphSpec& spec) const;

  // The zoom-in view (Fig. 4.3): the glyph enlarged, with per-sector labels
  // and values alongside.
  SvgDocument RenderZoom(const GlyphSpec& spec) const;

  const GlyphGeometry& geometry() const { return geometry_; }

 private:
  GlyphGeometry geometry_;
};

// Builds the SVG path data for an annular sector between radii r0 < r1 and
// angles a0 < a1 (radians, 0 = 12 o'clock, clockwise positive) around
// (cx, cy). Exposed for tests.
std::string AnnularSectorPath(double cx, double cy, double r0, double r1,
                              double a0, double a1);

}  // namespace maras::viz

#endif  // MARAS_VIZ_GLYPH_H_
