#include "viz/panorama.h"

#include <algorithm>

#include "util/string_util.h"
#include "viz/color.h"

namespace maras::viz {

SvgDocument PanoramaRenderer::Render(const std::vector<PanoramaEntry>& entries,
                                     const std::string& title) const {
  const size_t columns = std::max<size_t>(options_.columns, 1);
  const size_t rows = entries.empty() ? 1 : (entries.size() + columns - 1) / columns;
  const double header = title.empty() ? 10.0 : 34.0;
  const double cell = options_.cell_size;
  SvgDocument doc(static_cast<double>(columns) * cell + 20.0,
                  header + static_cast<double>(rows) * cell + 10.0);

  if (!title.empty()) {
    SvgDocument::TextStyle tt;
    tt.font_size = 15.0;
    tt.bold = true;
    doc.Text(12.0, 22.0, title, tt);
  }

  // Scale the glyph geometry to fit the cell.
  GlyphGeometry geom = options_.glyph;
  const double needed = geom.radius_sector_max * 2.0 + 24.0;
  const double scale = cell / needed;
  geom.radius_inner_max *= scale;
  geom.radius_inner_min *= scale;
  geom.radius_sector_base *= scale;
  geom.radius_sector_max *= scale;
  ContextualGlyphRenderer renderer(geom);

  for (size_t i = 0; i < entries.size(); ++i) {
    const size_t row = i / columns;
    const size_t col = i % columns;
    const double cx = 10.0 + (static_cast<double>(col) + 0.5) * cell;
    const double cy = header + (static_cast<double>(row) + 0.45) * cell;
    renderer.Draw(&doc, cx, cy, entries[i].spec);

    // Piecewise appends: GCC 12's -Wrestrict false-positives (PR105651) on
    // inlined `"lit" + std::to_string(...)` temporary chains.
    std::string caption;
    if (options_.show_rank) {
      caption += '#';
      caption += std::to_string(i + 1);
    }
    if (options_.show_score) {
      if (!caption.empty()) caption += "  ";
      caption += "score ";
      caption += maras::FormatDouble(entries[i].score, 3);
    }
    if (!caption.empty()) {
      SvgDocument::TextStyle ct;
      ct.font_size = 10.0;
      ct.anchor = "middle";
      doc.Text(cx, header + (static_cast<double>(row) + 0.97) * cell, caption,
               ct);
    }
  }
  return doc;
}

}  // namespace maras::viz
