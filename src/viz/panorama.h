#ifndef MARAS_VIZ_PANORAMA_H_
#define MARAS_VIZ_PANORAMA_H_

#include <string>
#include <vector>

#include "viz/glyph.h"
#include "viz/svg.h"

namespace maras::viz {

// The panoramagram (Fig. 4.2): a grid of contextual glyphs laid out in rank
// order, giving the analyst the distribution of discovered drug-ADR
// associations over the ranking scores at a glance.
struct PanoramaOptions {
  size_t columns = 5;
  double cell_size = 190.0;
  bool show_rank = true;
  bool show_score = true;
  GlyphGeometry glyph;
};

struct PanoramaEntry {
  GlyphSpec spec;
  double score = 0.0;
};

class PanoramaRenderer {
 public:
  explicit PanoramaRenderer(PanoramaOptions options = {})
      : options_(options) {}

  // Entries are drawn in the order given (callers rank beforehand).
  SvgDocument Render(const std::vector<PanoramaEntry>& entries,
                     const std::string& title) const;

 private:
  PanoramaOptions options_;
};

}  // namespace maras::viz

#endif  // MARAS_VIZ_PANORAMA_H_
