#ifndef MARAS_VIZ_LINECHART_H_
#define MARAS_VIZ_LINECHART_H_

#include <string>
#include <vector>

#include "viz/svg.h"

namespace maras::viz {

// Multi-series line chart used for quarter-over-quarter signal trends and
// the log-scale rule-space figure. Categories lay out evenly on the x-axis;
// each series draws a polyline with point markers and a legend entry.
struct LineChartOptions {
  double width = 460.0;
  double height = 260.0;
  // Y-axis bounds; when max <= min the renderer auto-scales to the data
  // (with a 5% head-room margin).
  double y_min = 0.0;
  double y_max = 0.0;
  std::string y_label;
  bool show_markers = true;
};

class LineChartRenderer {
 public:
  explicit LineChartRenderer(LineChartOptions options = {})
      : options_(options) {}

  struct Series {
    std::string name;
    std::vector<double> values;  // one per category; NaN gaps break lines
  };

  SvgDocument Render(const std::vector<std::string>& categories,
                     const std::vector<Series>& series,
                     const std::string& title) const;

 private:
  LineChartOptions options_;
};

}  // namespace maras::viz

#endif  // MARAS_VIZ_LINECHART_H_
