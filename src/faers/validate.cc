#include "faers/validate.h"

#include <cctype>
#include <unordered_map>
#include <unordered_set>

namespace maras::faers {

size_t ValidationReport::error_count() const {
  size_t count = 0;
  for (const auto& finding : findings) {
    count += finding.severity == FindingSeverity::kError;
  }
  return count;
}

size_t ValidationReport::warning_count() const {
  return findings.size() - error_count();
}

namespace {

bool LooksLikeCountryCode(const std::string& code) {
  if (code.empty()) return true;  // unreported is fine
  if (code.size() != 2) return false;
  return std::isupper(static_cast<unsigned char>(code[0])) &&
         std::isupper(static_cast<unsigned char>(code[1]));
}

}  // namespace

ValidationReport ValidateDataset(const QuarterDataset& dataset,
                                 const ValidationOptions& options) {
  ValidationReport report;
  report.reports_checked = dataset.reports.size();
  auto add = [&](FindingSeverity severity, const char* check,
                 std::string detail, uint64_t primary_id) {
    report.findings.push_back(
        ValidationFinding{severity, check, std::move(detail), primary_id});
  };

  if (dataset.quarter < 1 || dataset.quarter > 4) {
    add(FindingSeverity::kError, "bad-quarter",
        "quarter must be 1..4, got " + std::to_string(dataset.quarter), 0);
  }

  std::unordered_set<uint64_t> seen_primary;
  std::unordered_map<uint64_t, uint32_t> max_version;
  for (const Report& r : dataset.reports) {
    const uint64_t pid = r.primary_id();
    if (r.case_id == 0) {
      add(FindingSeverity::kError, "missing-caseid",
          "report without a case id", pid);
    }
    if (!seen_primary.insert(pid).second) {
      add(FindingSeverity::kError, "duplicate-primaryid",
          "primary id appears more than once", pid);
    }
    if (r.case_version == 0) {
      add(FindingSeverity::kError, "bad-caseversion",
          "case version must start at 1", pid);
    }
    if (r.drugs.empty()) {
      add(FindingSeverity::kWarning, "no-drugs",
          "report lists no medications", pid);
    }
    if (r.reactions.empty()) {
      add(FindingSeverity::kWarning, "no-reactions",
          "report lists no adverse reactions", pid);
    }
    if (r.age > options.max_plausible_age) {
      add(FindingSeverity::kWarning, "implausible-age",
          "age " + std::to_string(static_cast<int>(r.age)) + " exceeds " +
              std::to_string(static_cast<int>(options.max_plausible_age)),
          pid);
    }
    if (r.drugs.size() > options.max_plausible_drugs) {
      add(FindingSeverity::kWarning, "too-many-drugs",
          std::to_string(r.drugs.size()) + " drug entries", pid);
    }
    for (const std::string& name : r.drugs) {
      if (name.empty()) {
        add(FindingSeverity::kWarning, "empty-drug-name",
            "blank medicinal product string", pid);
        break;
      }
    }
    for (const std::string& pt : r.reactions) {
      if (pt.empty()) {
        add(FindingSeverity::kWarning, "empty-reaction",
            "blank reaction preferred term", pid);
        break;
      }
    }
    if (options.check_country_codes && !LooksLikeCountryCode(r.country)) {
      add(FindingSeverity::kWarning, "bad-country-code",
          "occr_country '" + r.country + "' is not a two-letter code", pid);
    }
    auto [it, inserted] = max_version.emplace(r.case_id, r.case_version);
    if (!inserted && r.case_version == it->second) {
      add(FindingSeverity::kError, "conflicting-version",
          "two reports share case " + std::to_string(r.case_id) +
              " version " + std::to_string(r.case_version),
          pid);
    } else if (!inserted && r.case_version > it->second) {
      it->second = r.case_version;
    }
  }
  return report;
}

maras::Status EnforceValidation(const ValidationReport& validation,
                                const IngestOptions& options,
                                IngestReport* report) {
  if (options.policy == IngestPolicy::kStrict) {
    for (const ValidationFinding& finding : validation.findings) {
      if (finding.severity != FindingSeverity::kError) continue;
      return maras::Status::FailedPrecondition(
          "validation failed [" + finding.check + "]: " + finding.detail +
          (finding.primary_id != 0
               ? " (primaryid " + std::to_string(finding.primary_id) + ")"
               : ""));
    }
    return maras::Status::OK();
  }
  size_t errors = validation.error_count();
  if (report != nullptr) {
    for (const ValidationFinding& finding : validation.findings) {
      if (finding.severity != FindingSeverity::kError) continue;
      report->warnings.push_back(
          "validation [" + finding.check + "]: " + finding.detail +
          (finding.primary_id != 0
               ? " (primaryid " + std::to_string(finding.primary_id) + ")"
               : ""));
    }
  }
  // With nothing checked, any error is dataset-level and unusable; otherwise
  // tolerate errors up to the configured fraction of checked reports.
  if (errors > 0 &&
      (validation.reports_checked == 0 ||
       static_cast<double>(errors) /
               static_cast<double>(validation.reports_checked) >
           options.max_bad_row_fraction)) {
    return maras::Status::FailedPrecondition(
        std::to_string(errors) + " validation errors across " +
        std::to_string(validation.reports_checked) +
        " reports exceeds the error budget of " +
        std::to_string(options.max_bad_row_fraction));
  }
  return maras::Status::OK();
}

}  // namespace maras::faers
