#ifndef MARAS_FAERS_VOCABULARY_H_
#define MARAS_FAERS_VOCABULARY_H_

#include <string>
#include <vector>

namespace maras::faers {

// Curated drug names (brand and generic, uppercase canonical form) that
// appear in the paper's tables and case studies, plus common FAERS drugs.
const std::vector<std::string>& CuratedDrugNames();

// Curated MedDRA-style adverse-reaction preferred terms.
const std::vector<std::string>& CuratedAdrTerms();

// Brand → generic style aliases used by the normalizer dictionary and by
// the generator when emitting name variants.
struct DrugAlias {
  std::string alias;
  std::string canonical;
};
const std::vector<DrugAlias>& CuratedDrugAliases();

// A known multi-drug interaction signal with literature provenance; these
// drive the case-study injections (paper Section 5.4) and the ground truth
// the benches check recovery against.
struct KnownInteraction {
  std::string name;                 // short id, e.g. "case1_ibu_metamizole"
  std::vector<std::string> drugs;   // canonical drug names (>= 2)
  std::vector<std::string> adrs;    // associated reactions
  std::string provenance;           // citation note
  // Relative report volume: interactions between widely co-prescribed
  // drugs accumulate proportionally more spontaneous reports (exposure),
  // which is what keeps their signal visible over background co-occurrence.
  double exposure_multiplier = 1.0;
};
const std::vector<KnownInteraction>& KnownInteractions();

// Deterministically generates `count` synthetic names such as "DRUG00417"
// or "REACTION00042" to extend a vocabulary to FAERS-like cardinality.
std::vector<std::string> SyntheticNames(const std::string& prefix,
                                        size_t count);

}  // namespace maras::faers

#endif  // MARAS_FAERS_VOCABULARY_H_
