#include "faers/ascii_format.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "util/delimited.h"
#include "util/string_util.h"

namespace maras::faers {

namespace {

constexpr char kDelim = '$';

std::string FileSuffix(int year, int quarter) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02dQ%d", year % 100, quarter);
  return buf;
}

std::string FormatAge(double age) {
  if (age < 0) return "";
  return maras::FormatDouble(age, 0);
}

// ---------------------------------------------------------------------------
// Validated numeric parsing. strtoull("12ab", ...) silently stops at 'a' and
// strtoull("garbage", ...) coerces to 0; FAERS identifiers are plain decimal,
// so anything else is a row-level fault that must surface as a diagnostic,
// not a primaryid of 0.
// ---------------------------------------------------------------------------

bool ParseUint64Field(const std::string& field, uint64_t* out) {
  if (field.empty()) return false;
  for (char c : field) {
    if (c < '0' || c > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  uint64_t value = std::strtoull(field.c_str(), &end, 10);
  if (errno == ERANGE || end != field.c_str() + field.size()) return false;
  *out = value;
  return true;
}

bool ParseUint32Field(const std::string& field, uint32_t* out) {
  uint64_t wide = 0;
  if (!ParseUint64Field(field, &wide) || wide > 0xFFFFFFFFull) return false;
  *out = static_cast<uint32_t>(wide);
  return true;
}

bool ParseAgeField(const std::string& field, double* out) {
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(field.c_str(), &end);
  if (errno == ERANGE || end != field.c_str() + field.size()) return false;
  *out = value;
  return true;
}

// Best-effort primaryid of a malformed line: its first '$'-field, when that
// still parses. Lets permissive mode classify the row's DRUG/REAC children
// as collateral of the rejected DEMO row rather than as orphans.
bool PrimaryIdPrefix(const std::string& line, uint64_t* out) {
  return ParseUint64Field(line.substr(0, line.find(kDelim)), out);
}

// Per-table ingestion context shared by the row loops below.
struct TableIngest {
  const IngestOptions* options;
  IngestReport* report;  // never null inside ReadAsciiQuarter
  std::string file;      // e.g. "DEMO14Q1.txt"
  bool strict;

  bool quarantining() const {
    return options->policy == IngestPolicy::kQuarantine;
  }

  // Records one rejected row. Returns the strict-mode status (Corruption with
  // file:line context) the caller must propagate when `strict`.
  maras::Status Reject(RowFault fault, size_t line, const std::string& column,
                       const std::string& reason, const std::string& content) {
    if (strict) {
      return maras::WithContext(
          maras::Status::Corruption(reason),
          file + ":" + std::to_string(line) +
              (column.empty() ? "" : " (" + column + ")"));
    }
    ++report->rows_rejected;
    if (fault == RowFault::kCollateral) ++report->collateral_rows;
    if (quarantining()) {
      report->Quarantine(*options, QuarantinedRow{fault, file, line, column,
                                                  reason, content});
    }
    return maras::Status::OK();
  }
};

}  // namespace

maras::StatusOr<AsciiQuarterFiles> WriteAsciiQuarter(
    const QuarterDataset& dataset) {
  maras::DelimitedTable demo;
  demo.header = {"primaryid", "caseid",      "caseversion", "rept_cod",
                 "age",       "sex",         "occr_country"};
  maras::DelimitedTable drug;
  drug.header = {"primaryid", "caseid", "drug_seq", "role_cod", "drugname"};
  maras::DelimitedTable reac;
  reac.header = {"primaryid", "caseid", "pt"};

  for (const Report& r : dataset.reports) {
    std::string primary = std::to_string(r.primary_id());
    std::string caseid = std::to_string(r.case_id);
    demo.rows.push_back({primary, caseid, std::to_string(r.case_version),
                         ReportTypeCode(r.type), FormatAge(r.age),
                         SexCode(r.sex), r.country});
    int seq = 1;
    for (const std::string& name : r.drugs) {
      // role_cod: PS (primary suspect) for the first drug, SS thereafter —
      // matching FAERS conventions; MARAS treats all roles equally.
      drug.rows.push_back({primary, caseid, std::to_string(seq),
                           seq == 1 ? "PS" : "SS", name});
      ++seq;
    }
    for (const std::string& pt : r.reactions) {
      reac.rows.push_back({primary, caseid, pt});
    }
  }

  maras::DelimitedWriter writer(kDelim);
  AsciiQuarterFiles files;
  MARAS_ASSIGN_OR_RETURN(files.demo, writer.ToString(demo));
  MARAS_ASSIGN_OR_RETURN(files.drug, writer.ToString(drug));
  MARAS_ASSIGN_OR_RETURN(files.reac, writer.ToString(reac));
  return files;
}

maras::Status WriteAsciiQuarterToDir(const QuarterDataset& dataset,
                                     const std::string& directory) {
  MARAS_ASSIGN_OR_RETURN(AsciiQuarterFiles files, WriteAsciiQuarter(dataset));
  std::string suffix = FileSuffix(dataset.year, dataset.quarter);
  std::string demo_path = directory + "/DEMO" + suffix + ".txt";
  std::string drug_path = directory + "/DRUG" + suffix + ".txt";
  std::string reac_path = directory + "/REAC" + suffix + ".txt";
  MARAS_RETURN_IF_ERROR_CTX(maras::AtomicWriteStringToFile(demo_path, files.demo),
                            demo_path);
  MARAS_RETURN_IF_ERROR_CTX(maras::AtomicWriteStringToFile(drug_path, files.drug),
                            drug_path);
  MARAS_RETURN_IF_ERROR_CTX(maras::AtomicWriteStringToFile(reac_path, files.reac),
                            reac_path);
  return maras::Status::OK();
}

maras::StatusOr<QuarterDataset> ReadAsciiQuarter(
    const AsciiQuarterFiles& files, int year, int quarter) {
  return ReadAsciiQuarter(files, year, quarter, IngestOptions{});
}

maras::StatusOr<QuarterDataset> ReadAsciiQuarter(
    const AsciiQuarterFiles& files, int year, int quarter,
    const IngestOptions& options, IngestReport* report) {
  const bool strict = options.policy == IngestPolicy::kStrict;
  IngestReport local;
  IngestReport* acc = &local;

  std::string suffix = FileSuffix(year, quarter);
  std::string demo_file = "DEMO" + suffix + ".txt";
  std::string drug_file = "DRUG" + suffix + ".txt";
  std::string reac_file = "REAC" + suffix + ".txt";

  maras::DelimitedReader reader(kDelim);
  std::vector<maras::DelimitedRowIssue> demo_issues, drug_issues, reac_issues;
  auto parse_table = [&](const std::string& content, const std::string& file,
                         std::vector<maras::DelimitedRowIssue>* issues)
      -> maras::StatusOr<maras::DelimitedTable> {
    auto table = strict ? reader.ParseString(content)
                        : reader.ParseString(content, issues);
    if (!table.ok()) return maras::WithContext(table.status(), file);
    return table;
  };
  MARAS_ASSIGN_OR_RETURN(maras::DelimitedTable demo,
                         parse_table(files.demo, demo_file, &demo_issues));
  MARAS_ASSIGN_OR_RETURN(maras::DelimitedTable drug,
                         parse_table(files.drug, drug_file, &drug_issues));
  MARAS_ASSIGN_OR_RETURN(maras::DelimitedTable reac,
                         parse_table(files.reac, reac_file, &reac_issues));

  int d_primary = demo.ColumnIndex("primaryid");
  int d_caseid = demo.ColumnIndex("caseid");
  int d_version = demo.ColumnIndex("caseversion");
  int d_rept = demo.ColumnIndex("rept_cod");
  int d_age = demo.ColumnIndex("age");
  int d_sex = demo.ColumnIndex("sex");
  int d_country = demo.ColumnIndex("occr_country");
  if (d_primary < 0 || d_caseid < 0 || d_version < 0 || d_rept < 0) {
    return maras::WithContext(
        maras::Status::Corruption("DEMO table missing required columns"),
        demo_file);
  }

  QuarterDataset dataset;
  dataset.year = year;
  dataset.quarter = quarter;
  // primaryid -> index into dataset.reports, ordered by first appearance.
  std::map<uint64_t, size_t> by_primary;
  // Primaryids of DEMO rows rejected here — their DRUG/REAC rows are
  // collateral damage of the root fault, not independent orphans.
  std::set<uint64_t> rejected_primary;

  TableIngest demo_ctx{&options, acc, demo_file, strict};
  acc->rows_seen += demo.rows.size() + demo_issues.size();
  for (const maras::DelimitedRowIssue& issue : demo_issues) {
    MARAS_RETURN_IF_ERROR(demo_ctx.Reject(RowFault::kMalformedRow, issue.line,
                                          "", issue.reason, issue.content));
    uint64_t primary = 0;
    if (PrimaryIdPrefix(issue.content, &primary)) {
      rejected_primary.insert(primary);
    }
  }
  for (size_t i = 0; i < demo.rows.size(); ++i) {
    const auto& row = demo.rows[i];
    const size_t line = demo.row_lines[i];
    std::string content = maras::Join(row, kDelim);
    uint64_t primary = 0;
    if (!ParseUint64Field(row[d_primary], &primary)) {
      MARAS_RETURN_IF_ERROR(demo_ctx.Reject(
          RowFault::kBadNumeric, line, "primaryid",
          "unparseable primaryid '" + row[d_primary] + "'", content));
      continue;
    }
    // Row-local reject helper: marks this DEMO row's primaryid rejected so
    // its children are classified collateral.
    auto reject = [&](RowFault fault, const std::string& column,
                      const std::string& reason) -> maras::Status {
      maras::Status st = demo_ctx.Reject(fault, line, column, reason, content);
      if (st.ok()) rejected_primary.insert(primary);
      return st;
    };
    Report r;
    if (!ParseUint64Field(row[d_caseid], &r.case_id)) {
      MARAS_RETURN_IF_ERROR(reject(RowFault::kBadNumeric, "caseid",
                                   "unparseable caseid '" + row[d_caseid] +
                                       "'"));
      continue;
    }
    if (!ParseUint32Field(row[d_version], &r.case_version)) {
      MARAS_RETURN_IF_ERROR(reject(RowFault::kBadNumeric, "caseversion",
                                   "unparseable caseversion '" +
                                       row[d_version] + "'"));
      continue;
    }
    if (!ParseReportType(row[d_rept], &r.type)) {
      MARAS_RETURN_IF_ERROR(reject(RowFault::kBadCode, "rept_cod",
                                   "bad rept_cod: " + row[d_rept]));
      continue;
    }
    if (d_age >= 0 && !row[d_age].empty() &&
        !ParseAgeField(row[d_age], &r.age)) {
      MARAS_RETURN_IF_ERROR(reject(RowFault::kBadNumeric, "age",
                                   "unparseable age '" + row[d_age] + "'"));
      continue;
    }
    if (d_sex >= 0 && !ParseSex(row[d_sex], &r.sex)) {
      MARAS_RETURN_IF_ERROR(reject(RowFault::kBadCode, "sex",
                                   "bad sex code: " + row[d_sex]));
      continue;
    }
    if (d_country >= 0) r.country = row[d_country];
    if (by_primary.count(primary) > 0) {
      MARAS_RETURN_IF_ERROR(demo_ctx.Reject(
          RowFault::kDuplicatePrimaryId, line, "primaryid",
          "duplicate primaryid " + row[d_primary], content));
      continue;
    }
    by_primary[primary] = dataset.reports.size();
    dataset.reports.push_back(std::move(r));
  }

  // DRUG and REAC rows join against the DEMO index identically; only the
  // payload column differs.
  auto ingest_child_table =
      [&](const maras::DelimitedTable& table,
          const std::vector<maras::DelimitedRowIssue>& issues,
          const std::string& file, const char* required_column,
          const char* kind,
          std::vector<std::string> Report::*field) -> maras::Status {
    int c_primary = table.ColumnIndex("primaryid");
    int c_payload = table.ColumnIndex(required_column);
    if (c_primary < 0 || c_payload < 0) {
      return maras::WithContext(
          maras::Status::Corruption(std::string(kind) +
                                    " table missing required columns"),
          file);
    }
    TableIngest ctx{&options, acc, file, strict};
    acc->rows_seen += table.rows.size() + issues.size();
    for (const maras::DelimitedRowIssue& issue : issues) {
      uint64_t primary = 0;
      bool collateral = PrimaryIdPrefix(issue.content, &primary) &&
                        rejected_primary.count(primary) > 0;
      MARAS_RETURN_IF_ERROR(
          ctx.Reject(collateral ? RowFault::kCollateral
                                : RowFault::kMalformedRow,
                     issue.line, "", issue.reason, issue.content));
    }
    for (size_t i = 0; i < table.rows.size(); ++i) {
      const auto& row = table.rows[i];
      const size_t line = table.row_lines[i];
      std::string content = maras::Join(row, kDelim);
      uint64_t primary = 0;
      if (!ParseUint64Field(row[c_primary], &primary)) {
        MARAS_RETURN_IF_ERROR(ctx.Reject(
            RowFault::kBadNumeric, line, "primaryid",
            "unparseable primaryid '" + row[c_primary] + "'", content));
        continue;
      }
      auto it = by_primary.find(primary);
      if (it == by_primary.end()) {
        bool collateral = rejected_primary.count(primary) > 0;
        MARAS_RETURN_IF_ERROR(ctx.Reject(
            collateral ? RowFault::kCollateral : RowFault::kOrphanRow, line,
            "primaryid",
            std::string(kind) + " row with unknown primaryid " +
                row[c_primary],
            content));
        continue;
      }
      (dataset.reports[it->second].*field).push_back(row[c_payload]);
    }
    return maras::Status::OK();
  };
  MARAS_RETURN_IF_ERROR(ingest_child_table(drug, drug_issues, drug_file,
                                           "drugname", "DRUG",
                                           &Report::drugs));
  MARAS_RETURN_IF_ERROR(ingest_child_table(reac, reac_issues, reac_file, "pt",
                                           "REAC", &Report::reactions));

  acc->reports_ingested += dataset.reports.size();
  // Deliver the accounting even when the budget check below fails the read —
  // the diagnostics explain *why* the quarter was declared unusable.
  if (report != nullptr) report->Merge(local);
  if (!strict && acc->rows_rejected > 0 &&
      acc->rejected_fraction() > options.max_bad_row_fraction) {
    char frac[32];
    std::snprintf(frac, sizeof(frac), "%.1f%%",
                  100.0 * acc->rejected_fraction());
    return maras::WithContext(
        maras::Status::Corruption(
            std::to_string(acc->rows_rejected) + " of " +
            std::to_string(acc->rows_seen) + " rows rejected (" + frac +
            ") exceeds the error budget of " +
            std::to_string(options.max_bad_row_fraction)),
        "quarter " + std::to_string(year) + "Q" + std::to_string(quarter));
  }
  return dataset;
}

maras::StatusOr<QuarterDataset> ReadAsciiQuarterFromDir(
    const std::string& directory, int year, int quarter) {
  return ReadAsciiQuarterFromDir(directory, year, quarter, IngestOptions{});
}

maras::StatusOr<QuarterDataset> ReadAsciiQuarterFromDir(
    const std::string& directory, int year, int quarter,
    const IngestOptions& options, IngestReport* report) {
  std::string suffix = FileSuffix(year, quarter);
  AsciiQuarterFiles files;
  struct Source {
    const char* prefix;
    std::string* dest;
  };
  for (const Source& source : {Source{"DEMO", &files.demo},
                               Source{"DRUG", &files.drug},
                               Source{"REAC", &files.reac}}) {
    std::string path = directory + "/" + source.prefix + suffix + ".txt";
    auto content = maras::ReadFileToString(path);
    if (!content.ok()) {
      return maras::WithContext(content.status(),
                                std::string(source.prefix) + " file");
    }
    *source.dest = *std::move(content);
  }
  return ReadAsciiQuarter(files, year, quarter, options, report);
}

}  // namespace maras::faers
