#include "faers/ascii_format.h"

#include <cstdio>
#include <map>

#include "util/delimited.h"
#include "util/string_util.h"

namespace maras::faers {

namespace {

constexpr char kDelim = '$';

std::string FileSuffix(int year, int quarter) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02dQ%d", year % 100, quarter);
  return buf;
}

std::string FormatAge(double age) {
  if (age < 0) return "";
  return maras::FormatDouble(age, 0);
}

}  // namespace

maras::StatusOr<AsciiQuarterFiles> WriteAsciiQuarter(
    const QuarterDataset& dataset) {
  maras::DelimitedTable demo;
  demo.header = {"primaryid", "caseid",      "caseversion", "rept_cod",
                 "age",       "sex",         "occr_country"};
  maras::DelimitedTable drug;
  drug.header = {"primaryid", "caseid", "drug_seq", "role_cod", "drugname"};
  maras::DelimitedTable reac;
  reac.header = {"primaryid", "caseid", "pt"};

  for (const Report& r : dataset.reports) {
    std::string primary = std::to_string(r.primary_id());
    std::string caseid = std::to_string(r.case_id);
    demo.rows.push_back({primary, caseid, std::to_string(r.case_version),
                         ReportTypeCode(r.type), FormatAge(r.age),
                         SexCode(r.sex), r.country});
    int seq = 1;
    for (const std::string& name : r.drugs) {
      // role_cod: PS (primary suspect) for the first drug, SS thereafter —
      // matching FAERS conventions; MARAS treats all roles equally.
      drug.rows.push_back({primary, caseid, std::to_string(seq),
                           seq == 1 ? "PS" : "SS", name});
      ++seq;
    }
    for (const std::string& pt : r.reactions) {
      reac.rows.push_back({primary, caseid, pt});
    }
  }

  maras::DelimitedWriter writer(kDelim);
  AsciiQuarterFiles files;
  MARAS_ASSIGN_OR_RETURN(files.demo, writer.ToString(demo));
  MARAS_ASSIGN_OR_RETURN(files.drug, writer.ToString(drug));
  MARAS_ASSIGN_OR_RETURN(files.reac, writer.ToString(reac));
  return files;
}

maras::Status WriteAsciiQuarterToDir(const QuarterDataset& dataset,
                                     const std::string& directory) {
  MARAS_ASSIGN_OR_RETURN(AsciiQuarterFiles files, WriteAsciiQuarter(dataset));
  std::string suffix = FileSuffix(dataset.year, dataset.quarter);
  MARAS_RETURN_IF_ERROR(maras::WriteStringToFile(
      directory + "/DEMO" + suffix + ".txt", files.demo));
  MARAS_RETURN_IF_ERROR(maras::WriteStringToFile(
      directory + "/DRUG" + suffix + ".txt", files.drug));
  MARAS_RETURN_IF_ERROR(maras::WriteStringToFile(
      directory + "/REAC" + suffix + ".txt", files.reac));
  return maras::Status::OK();
}

maras::StatusOr<QuarterDataset> ReadAsciiQuarter(
    const AsciiQuarterFiles& files, int year, int quarter) {
  maras::DelimitedReader reader(kDelim);
  MARAS_ASSIGN_OR_RETURN(maras::DelimitedTable demo,
                         reader.ParseString(files.demo));
  MARAS_ASSIGN_OR_RETURN(maras::DelimitedTable drug,
                         reader.ParseString(files.drug));
  MARAS_ASSIGN_OR_RETURN(maras::DelimitedTable reac,
                         reader.ParseString(files.reac));

  int d_primary = demo.ColumnIndex("primaryid");
  int d_caseid = demo.ColumnIndex("caseid");
  int d_version = demo.ColumnIndex("caseversion");
  int d_rept = demo.ColumnIndex("rept_cod");
  int d_age = demo.ColumnIndex("age");
  int d_sex = demo.ColumnIndex("sex");
  int d_country = demo.ColumnIndex("occr_country");
  if (d_primary < 0 || d_caseid < 0 || d_version < 0 || d_rept < 0) {
    return maras::Status::Corruption("DEMO table missing required columns");
  }

  QuarterDataset dataset;
  dataset.year = year;
  dataset.quarter = quarter;
  // primaryid -> index into dataset.reports, ordered by first appearance.
  std::map<uint64_t, size_t> by_primary;
  for (const auto& row : demo.rows) {
    Report r;
    char* end = nullptr;
    r.case_id = std::strtoull(row[d_caseid].c_str(), &end, 10);
    r.case_version =
        static_cast<uint32_t>(std::strtoul(row[d_version].c_str(), &end, 10));
    if (!ParseReportType(row[d_rept], &r.type)) {
      return maras::Status::Corruption("bad rept_cod: " + row[d_rept]);
    }
    if (d_age >= 0 && !row[d_age].empty()) {
      r.age = std::strtod(row[d_age].c_str(), &end);
    }
    if (d_sex >= 0 && !ParseSex(row[d_sex], &r.sex)) {
      return maras::Status::Corruption("bad sex code: " + row[d_sex]);
    }
    if (d_country >= 0) r.country = row[d_country];
    uint64_t primary = std::strtoull(row[d_primary].c_str(), &end, 10);
    if (by_primary.count(primary) > 0) {
      return maras::Status::Corruption("duplicate primaryid " +
                                       row[d_primary]);
    }
    by_primary[primary] = dataset.reports.size();
    dataset.reports.push_back(std::move(r));
  }

  int g_primary = drug.ColumnIndex("primaryid");
  int g_name = drug.ColumnIndex("drugname");
  if (g_primary < 0 || g_name < 0) {
    return maras::Status::Corruption("DRUG table missing required columns");
  }
  for (const auto& row : drug.rows) {
    uint64_t primary = std::strtoull(row[g_primary].c_str(), nullptr, 10);
    auto it = by_primary.find(primary);
    if (it == by_primary.end()) {
      return maras::Status::Corruption("DRUG row with unknown primaryid " +
                                       row[g_primary]);
    }
    dataset.reports[it->second].drugs.push_back(row[g_name]);
  }

  int r_primary = reac.ColumnIndex("primaryid");
  int r_pt = reac.ColumnIndex("pt");
  if (r_primary < 0 || r_pt < 0) {
    return maras::Status::Corruption("REAC table missing required columns");
  }
  for (const auto& row : reac.rows) {
    uint64_t primary = std::strtoull(row[r_primary].c_str(), nullptr, 10);
    auto it = by_primary.find(primary);
    if (it == by_primary.end()) {
      return maras::Status::Corruption("REAC row with unknown primaryid " +
                                       row[r_primary]);
    }
    dataset.reports[it->second].reactions.push_back(row[r_pt]);
  }
  return dataset;
}

maras::StatusOr<QuarterDataset> ReadAsciiQuarterFromDir(
    const std::string& directory, int year, int quarter) {
  std::string suffix = FileSuffix(year, quarter);
  AsciiQuarterFiles files;
  MARAS_ASSIGN_OR_RETURN(
      files.demo,
      maras::ReadFileToString(directory + "/DEMO" + suffix + ".txt"));
  MARAS_ASSIGN_OR_RETURN(
      files.drug,
      maras::ReadFileToString(directory + "/DRUG" + suffix + ".txt"));
  MARAS_ASSIGN_OR_RETURN(
      files.reac,
      maras::ReadFileToString(directory + "/REAC" + suffix + ".txt"));
  return ReadAsciiQuarter(files, year, quarter);
}

}  // namespace maras::faers
