#include "faers/dedup.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace maras::faers {

namespace {

// Age band boundaries match core/stratified.h (kept dependency-free here).
int AgeBand(double age) {
  if (age < 0) return 0;
  if (age < 18) return 1;
  if (age < 65) return 2;
  return 3;
}

// Canonical fingerprint of the clinical content of a report.
std::string Fingerprint(const Report& report) {
  std::vector<std::string> drugs = report.drugs;
  std::vector<std::string> reactions = report.reactions;
  std::sort(drugs.begin(), drugs.end());
  drugs.erase(std::unique(drugs.begin(), drugs.end()), drugs.end());
  std::sort(reactions.begin(), reactions.end());
  reactions.erase(std::unique(reactions.begin(), reactions.end()),
                  reactions.end());
  std::string key;
  for (const std::string& d : drugs) {
    key += d;
    key += '\x1f';
  }
  key += '\x1e';
  for (const std::string& r : reactions) {
    key += r;
    key += '\x1f';
  }
  key += '\x1e';
  key += SexCode(report.sex);
  key += static_cast<char>('0' + AgeBand(report.age));
  return key;
}

}  // namespace

std::vector<DuplicateCluster> FindDuplicateCases(const QuarterDataset& dataset,
                                                 DedupStats* stats) {
  DedupStats local;
  local.reports_checked = dataset.reports.size();
  // Fingerprint -> indices of matching reports, insertion-ordered.
  std::unordered_map<std::string, std::vector<size_t>> buckets;
  std::vector<std::string> ordered_keys;
  for (size_t i = 0; i < dataset.reports.size(); ++i) {
    const Report& report = dataset.reports[i];
    if (report.drugs.empty() || report.reactions.empty()) continue;
    std::string key = Fingerprint(report);
    auto [it, inserted] = buckets.emplace(key, std::vector<size_t>{});
    if (inserted) ordered_keys.push_back(key);
    it->second.push_back(i);
  }
  std::vector<DuplicateCluster> clusters;
  for (const std::string& key : ordered_keys) {
    const std::vector<size_t>& indices = buckets[key];
    // Distinct case ids required: versioned resubmissions are handled by
    // the preprocessor, not flagged here.
    std::unordered_set<uint64_t> cases;
    for (size_t i : indices) cases.insert(dataset.reports[i].case_id);
    if (cases.size() < 2) continue;
    DuplicateCluster cluster;
    for (size_t i : indices) {
      cluster.primary_ids.push_back(dataset.reports[i].primary_id());
    }
    local.redundant_reports += cluster.primary_ids.size() - 1;
    clusters.push_back(std::move(cluster));
  }
  local.clusters = clusters.size();
  if (stats != nullptr) *stats = local;
  return clusters;
}

QuarterDataset RemoveDuplicateCases(const QuarterDataset& dataset,
                                    const IngestOptions& options,
                                    IngestReport* report, DedupStats* stats) {
  DedupStats local;
  QuarterDataset kept = RemoveDuplicateCases(dataset, &local);
  if (report != nullptr && local.redundant_reports > 0) {
    report->warnings.push_back(
        dataset.Label() + ": removed " +
        std::to_string(local.redundant_reports) +
        " suspected duplicate reports in " + std::to_string(local.clusters) +
        " clusters");
    if (options.policy == IngestPolicy::kQuarantine) {
      for (const DuplicateCluster& cluster : FindDuplicateCases(dataset)) {
        for (size_t i = 1; i < cluster.primary_ids.size(); ++i) {
          report->warnings.push_back(
              dataset.Label() + ": primaryid " +
              std::to_string(cluster.primary_ids[i]) +
              " removed as duplicate of primaryid " +
              std::to_string(cluster.primary_ids[0]));
        }
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return kept;
}

QuarterDataset RemoveDuplicateCases(const QuarterDataset& dataset,
                                    DedupStats* stats) {
  std::vector<DuplicateCluster> clusters = FindDuplicateCases(dataset, stats);
  std::unordered_set<uint64_t> drop;
  for (const DuplicateCluster& cluster : clusters) {
    for (size_t i = 1; i < cluster.primary_ids.size(); ++i) {
      drop.insert(cluster.primary_ids[i]);
    }
  }
  QuarterDataset kept;
  kept.year = dataset.year;
  kept.quarter = dataset.quarter;
  for (const Report& report : dataset.reports) {
    if (drop.count(report.primary_id()) == 0) kept.reports.push_back(report);
  }
  return kept;
}

}  // namespace maras::faers
