#ifndef MARAS_FAERS_VALIDATE_H_
#define MARAS_FAERS_VALIDATE_H_

#include <string>
#include <vector>

#include "faers/ingest.h"
#include "faers/report.h"
#include "util/status.h"

namespace maras::faers {

// Dataset-quality validation run before analysis — the checks a production
// ingestion pipeline applies to each incoming quarterly extract. Findings
// are graded: errors make the extract unusable as-is (duplicate primary
// ids, malformed identity); warnings flag records the preprocessor will
// drop or that look suspicious (no drugs, no reactions, implausible age,
// unknown country codes).
enum class FindingSeverity { kWarning, kError };

struct ValidationFinding {
  FindingSeverity severity = FindingSeverity::kWarning;
  std::string check;       // stable identifier, e.g. "duplicate-primaryid"
  std::string detail;      // human-readable context
  uint64_t primary_id = 0; // offending report, 0 for dataset-level findings
};

struct ValidationReport {
  std::vector<ValidationFinding> findings;
  size_t reports_checked = 0;

  bool ok() const { return error_count() == 0; }
  size_t error_count() const;
  size_t warning_count() const;
};

struct ValidationOptions {
  double max_plausible_age = 120.0;
  // Reports with more drugs than this are flagged (data-entry artifacts;
  // FAERS has reports listing an entire formulary).
  size_t max_plausible_drugs = 60;
  bool check_country_codes = true;
};

ValidationReport ValidateDataset(const QuarterDataset& dataset,
                                 const ValidationOptions& options = {});

// Applies the ingestion recovery policy to a validation outcome: under
// kStrict any error finding fails the extract (FailedPrecondition naming the
// first offender); under kPermissive/kQuarantine error findings are recorded
// as warnings in `report` (when non-null) and the extract passes unless the
// error fraction — errors / reports_checked — exceeds
// `options.max_bad_row_fraction`. Warning-grade findings never fail any
// policy.
maras::Status EnforceValidation(const ValidationReport& validation,
                                const IngestOptions& options,
                                IngestReport* report = nullptr);

}  // namespace maras::faers

#endif  // MARAS_FAERS_VALIDATE_H_
