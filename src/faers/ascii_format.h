#ifndef MARAS_FAERS_ASCII_FORMAT_H_
#define MARAS_FAERS_ASCII_FORMAT_H_

#include <string>

#include "faers/ingest.h"
#include "faers/report.h"
#include "util/statusor.h"

namespace maras::faers {

// Reader/writer for the FAERS quarterly ASCII exchange format: three
// '$'-delimited tables with one header line each, keyed by primaryid.
//
//   DEMOyyQq.txt: primaryid$caseid$caseversion$rept_cod$age$sex$occr_country
//   DRUGyyQq.txt: primaryid$caseid$drug_seq$role_cod$drugname
//   REACyyQq.txt: primaryid$caseid$pt
//
// This mirrors the public FAERS layout closely enough that the parsing,
// joining and case-versioning logic exercised on real extracts is exercised
// here identically; columns FAERS carries that MARAS never reads are
// omitted.
struct AsciiQuarterFiles {
  std::string demo;
  std::string drug;
  std::string reac;
};

// Serializes `dataset` into the three table files.
maras::StatusOr<AsciiQuarterFiles> WriteAsciiQuarter(
    const QuarterDataset& dataset);

// Writes the three files into `directory` using FAERS naming
// (DEMO14Q1.txt etc.). The directory must exist.
maras::Status WriteAsciiQuarterToDir(const QuarterDataset& dataset,
                                     const std::string& directory);

// Parses the three tables back into a dataset. Reports are reassembled by
// primaryid; a DRUG/REAC row whose primaryid has no DEMO row is Corruption.
// Equivalent to the policy-aware overload under IngestPolicy::kStrict.
maras::StatusOr<QuarterDataset> ReadAsciiQuarter(
    const AsciiQuarterFiles& files, int year, int quarter);

// Policy-aware parse. Under kStrict the first malformed row fails the whole
// quarter (historical behavior). Under kPermissive malformed rows — wrong
// field counts, garbage numerics, unknown codes, duplicate primaryids,
// orphan DRUG/REAC rows — are skipped, and the read fails only when the
// rejected fraction exceeds `options.max_bad_row_fraction`. kQuarantine
// additionally captures each rejected row with file/line/column/reason
// diagnostics. `report`, when non-null, accumulates the accounting under
// every policy.
maras::StatusOr<QuarterDataset> ReadAsciiQuarter(
    const AsciiQuarterFiles& files, int year, int quarter,
    const IngestOptions& options, IngestReport* report = nullptr);

// Reads from `directory` using FAERS naming for the given year/quarter.
// IOErrors name the file (DEMO/DRUG/REAC) that failed.
maras::StatusOr<QuarterDataset> ReadAsciiQuarterFromDir(
    const std::string& directory, int year, int quarter);

maras::StatusOr<QuarterDataset> ReadAsciiQuarterFromDir(
    const std::string& directory, int year, int quarter,
    const IngestOptions& options, IngestReport* report = nullptr);

}  // namespace maras::faers

#endif  // MARAS_FAERS_ASCII_FORMAT_H_
