#include "faers/ingest.h"

namespace maras::faers {

const char* IngestPolicyName(IngestPolicy policy) {
  switch (policy) {
    case IngestPolicy::kStrict:
      return "strict";
    case IngestPolicy::kPermissive:
      return "permissive";
    case IngestPolicy::kQuarantine:
      return "quarantine";
  }
  return "?";
}

const char* RowFaultName(RowFault fault) {
  switch (fault) {
    case RowFault::kMalformedRow:
      return "malformed-row";
    case RowFault::kBadNumeric:
      return "bad-numeric";
    case RowFault::kBadCode:
      return "bad-code";
    case RowFault::kDuplicatePrimaryId:
      return "duplicate-primaryid";
    case RowFault::kOrphanRow:
      return "orphan-row";
    case RowFault::kCollateral:
      return "collateral";
  }
  return "?";
}

std::string QuarantinedRow::ToString() const {
  std::string out = file + ":" + std::to_string(line) + " [" +
                    RowFaultName(fault) + "]";
  if (!column.empty()) {
    out += " ";
    out += column;
  }
  if (!reason.empty()) {
    out += ": ";
    out += reason;
  }
  return out;
}

size_t IngestReport::FaultCount() const {
  return rows_rejected - collateral_rows;
}

size_t IngestReport::CountFault(RowFault fault) const {
  size_t count = 0;
  for (const QuarantinedRow& row : quarantined) {
    count += row.fault == fault;
  }
  return count;
}

void IngestReport::Quarantine(const IngestOptions& options,
                              QuarantinedRow row) {
  if (options.max_quarantined_rows != 0 &&
      quarantined.size() >= options.max_quarantined_rows) {
    if (!quarantine_overflow) {
      quarantine_overflow = true;
      warnings.push_back("quarantine capture cap of " +
                         std::to_string(options.max_quarantined_rows) +
                         " reached; further rejects are counted only");
    }
    return;
  }
  quarantined.push_back(std::move(row));
}

void IngestReport::Merge(const IngestReport& other) {
  rows_seen += other.rows_seen;
  rows_rejected += other.rows_rejected;
  collateral_rows += other.collateral_rows;
  reports_ingested += other.reports_ingested;
  quarantined.insert(quarantined.end(), other.quarantined.begin(),
                     other.quarantined.end());
  quarantine_overflow = quarantine_overflow || other.quarantine_overflow;
  warnings.insert(warnings.end(), other.warnings.begin(),
                  other.warnings.end());
}

std::string IngestReport::Summary() const {
  std::string out = std::to_string(rows_seen) + " rows, " +
                    std::to_string(rows_rejected) + " rejected";
  if (collateral_rows > 0) {
    out += " (" + std::to_string(collateral_rows) + " collateral)";
  }
  out += ", " + std::to_string(warnings.size()) + " warning";
  if (warnings.size() != 1) out += "s";
  return out;
}

}  // namespace maras::faers
