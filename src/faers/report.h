#ifndef MARAS_FAERS_REPORT_H_
#define MARAS_FAERS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace maras::faers {

// Report type codes used by FAERS: expedited 15-day reports (EXP) are the
// manufacturer-mandated serious events the paper selects (Section 5.1).
enum class ReportType : uint8_t {
  kExpedited = 0,   // "EXP"
  kPeriodic = 1,    // "PER"
  kDirect = 2,      // "DIR"
};

std::string ReportTypeCode(ReportType type);
bool ParseReportType(const std::string& code, ReportType* out);

// Patient sex as reported.
enum class Sex : uint8_t { kUnknown = 0, kFemale = 1, kMale = 2 };
std::string SexCode(Sex sex);
bool ParseSex(const std::string& code, Sex* out);

// One individual safety report (one FAERS case version): the set of drugs
// the patient took and the set of adverse reactions observed, plus the
// demographic fields MARAS surfaces during drill-down.
struct Report {
  // FAERS primaryid = caseid concatenated with the version; we keep them
  // separate and join on output.
  uint64_t case_id = 0;
  uint32_t case_version = 1;
  ReportType type = ReportType::kExpedited;
  Sex sex = Sex::kUnknown;
  // Age in years; < 0 means unreported.
  double age = -1.0;
  std::string country;  // ISO-like two-letter code

  // Verbatim drug names as reported (may contain misspellings, brand names,
  // dose decorations) and reaction preferred terms.
  std::vector<std::string> drugs;
  std::vector<std::string> reactions;

  uint64_t primary_id() const { return case_id * 100 + case_version; }
};

// One FAERS quarterly extract.
struct QuarterDataset {
  int year = 0;
  int quarter = 0;  // 1..4
  std::vector<Report> reports;

  std::string Label() const {
    return std::to_string(year) + "Q" + std::to_string(quarter);
  }
};

}  // namespace maras::faers

#endif  // MARAS_FAERS_REPORT_H_
