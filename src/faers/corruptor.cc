#include "faers/corruptor.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "util/delimited.h"
#include "util/random.h"
#include "util/string_util.h"

namespace maras::faers {

namespace {

constexpr char kDelim = '$';

std::string FileSuffix(int year, int quarter) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02dQ%d", year % 100, quarter);
  return buf;
}

// One table being corrupted: its lines (index 0 is the header), the count of
// original data lines eligible as victims, and which are already damaged.
struct MutableTable {
  std::string name;  // "DEMO" / "DRUG" / "REAC"
  std::string file;  // "DEMO14Q1.txt"
  std::vector<std::string> lines;
  size_t original_lines = 0;   // victims are chosen among lines [1, this)
  std::set<size_t> used;       // damaged line indices (0-based)

  size_t data_rows() const { return original_lines - 1; }
};

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) {
      lines.push_back(content.substr(pos));
      break;
    }
    lines.push_back(content.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

uint64_t LeadingPrimaryId(const std::string& line) {
  uint64_t value = 0;
  for (char c : line) {
    if (c < '0' || c > '9') break;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTruncateRow:
      return "truncate-row";
    case FaultKind::kEmbeddedDelimiter:
      return "embedded-delimiter";
    case FaultKind::kDropColumn:
      return "drop-column";
    case FaultKind::kReorderColumns:
      return "reorder-columns";
    case FaultKind::kDuplicatePrimaryId:
      return "duplicate-primaryid";
    case FaultKind::kOrphanDrugRow:
      return "orphan-drug-row";
    case FaultKind::kOrphanReacRow:
      return "orphan-reac-row";
    case FaultKind::kGarbageNumeric:
      return "garbage-numeric";
    case FaultKind::kMissingFile:
      return "missing-file";
  }
  return "?";
}

size_t CorruptionResult::RowFaultCount() const {
  size_t count = 0;
  for (const InjectedFault& fault : faults) {
    count += fault.kind != FaultKind::kMissingFile;
  }
  return count;
}

std::vector<FaultSpec> AllRowFaults(size_t per_kind) {
  return {
      {FaultKind::kTruncateRow, per_kind},
      {FaultKind::kEmbeddedDelimiter, per_kind},
      {FaultKind::kDropColumn, per_kind},
      {FaultKind::kReorderColumns, per_kind},
      {FaultKind::kDuplicatePrimaryId, per_kind},
      {FaultKind::kOrphanDrugRow, per_kind},
      {FaultKind::kOrphanReacRow, per_kind},
      {FaultKind::kGarbageNumeric, per_kind},
  };
}

maras::StatusOr<CorruptionResult> Corruptor::Corrupt(
    const AsciiQuarterFiles& clean, int year, int quarter) const {
  std::string suffix = FileSuffix(year, quarter);
  MutableTable demo{"DEMO", "DEMO" + suffix + ".txt", SplitLines(clean.demo),
                    0, {}};
  MutableTable drug{"DRUG", "DRUG" + suffix + ".txt", SplitLines(clean.drug),
                    0, {}};
  MutableTable reac{"REAC", "REAC" + suffix + ".txt", SplitLines(clean.reac),
                    0, {}};
  for (MutableTable* table : {&demo, &drug, &reac}) {
    if (table->lines.empty()) {
      return maras::Status::InvalidArgument("empty " + table->name +
                                            " table cannot be corrupted");
    }
    table->original_lines = table->lines.size();
  }

  CorruptionResult result;
  maras::Rng rng(config_.seed);

  uint64_t max_primary = 0;
  for (size_t i = 1; i < demo.original_lines; ++i) {
    max_primary = std::max(max_primary, LeadingPrimaryId(demo.lines[i]));
  }
  uint64_t next_phantom = max_primary + 1;

  // Picks an undamaged original data line whose report carries no fault yet.
  // The one-fault-per-report contract keeps quarantine accounting exact.
  auto pick_victim = [&](MutableTable* table, size_t* line_index,
                         uint64_t* primary) -> bool {
    if (table->data_rows() == 0) return false;
    for (int attempt = 0; attempt < 200; ++attempt) {
      size_t index = 1 + static_cast<size_t>(rng.Uniform(table->data_rows()));
      if (table->used.count(index) > 0) continue;
      uint64_t pid = LeadingPrimaryId(table->lines[index]);
      if (pid == 0 || result.faulted_primary_ids.count(pid) > 0) continue;
      table->used.insert(index);
      result.faulted_primary_ids.insert(pid);
      *line_index = index;
      *primary = pid;
      return true;
    }
    return false;
  };

  auto record = [&](FaultKind kind, const MutableTable& table, size_t index,
                    uint64_t primary, std::string detail) {
    result.faults.push_back(InjectedFault{kind, table.file, index + 1, primary,
                                          std::move(detail)});
  };

  for (const FaultSpec& spec : config_.faults) {
    for (size_t n = 0; n < spec.count; ++n) {
      switch (spec.kind) {
        case FaultKind::kTruncateRow:
        case FaultKind::kEmbeddedDelimiter:
        case FaultKind::kDropColumn: {
          // These strike any of the three tables; the leading primaryid
          // field is always preserved so the rejected row stays attributable.
          MutableTable* table =
              rng.Uniform(3) == 0 ? &demo : rng.Uniform(2) == 0 ? &drug
                                                                : &reac;
          size_t index = 0;
          uint64_t primary = 0;
          if (!pick_victim(table, &index, &primary)) {
            return maras::Status::InvalidArgument(
                "not enough clean rows in " + table->name +
                " for fault " + FaultKindName(spec.kind));
          }
          std::string& line = table->lines[index];
          size_t first = line.find(kDelim);
          size_t last = line.rfind(kDelim);
          if (first == std::string::npos) {
            return maras::Status::InvalidArgument("undelimited row in " +
                                                  table->name);
          }
          if (spec.kind == FaultKind::kTruncateRow) {
            // Cut in [first+1, last]: at least the last delimiter is lost,
            // the primaryid field and its delimiter survive.
            size_t cut = first + 1 +
                         static_cast<size_t>(rng.Uniform(last - first));
            line.resize(cut);
            record(spec.kind, *table, index, primary,
                   "truncated at byte " + std::to_string(cut));
          } else if (spec.kind == FaultKind::kEmbeddedDelimiter) {
            size_t pos = first + 1 +
                         static_cast<size_t>(
                             rng.Uniform(line.size() - first));
            line.insert(pos, 1, kDelim);
            record(spec.kind, *table, index, primary,
                   "stray delimiter at byte " + std::to_string(pos));
          } else {
            std::vector<std::string> fields = maras::Split(line, kDelim);
            size_t drop = 1 + static_cast<size_t>(
                                  rng.Uniform(fields.size() - 1));
            std::string dropped = fields[drop];
            fields.erase(fields.begin() +
                         static_cast<std::ptrdiff_t>(drop));
            line = maras::Join(fields, kDelim);
            record(spec.kind, *table, index, primary,
                   "dropped field " + std::to_string(drop) + " ('" + dropped +
                       "')");
          }
          break;
        }
        case FaultKind::kReorderColumns: {
          // DEMO layout: primaryid caseid caseversion rept_cod age sex
          // occr_country. Swapping rept_cod and occr_country keeps the field
          // count valid but plants a code the parser must reject.
          size_t index = 0;
          uint64_t primary = 0;
          if (!pick_victim(&demo, &index, &primary)) {
            return maras::Status::InvalidArgument(
                "not enough clean DEMO rows for reorder-columns");
          }
          std::vector<std::string> fields =
              maras::Split(demo.lines[index], kDelim);
          if (fields.size() < 7) {
            return maras::Status::InvalidArgument("short DEMO row");
          }
          std::swap(fields[3], fields[6]);
          demo.lines[index] = maras::Join(fields, kDelim);
          record(spec.kind, demo, index, primary,
                 "swapped rept_cod and occr_country");
          break;
        }
        case FaultKind::kGarbageNumeric: {
          size_t index = 0;
          uint64_t primary = 0;
          if (!pick_victim(&demo, &index, &primary)) {
            return maras::Status::InvalidArgument(
                "not enough clean DEMO rows for garbage-numeric");
          }
          std::vector<std::string> fields =
              maras::Split(demo.lines[index], kDelim);
          if (fields.size() < 2) {
            return maras::Status::InvalidArgument("short DEMO row");
          }
          fields[1] = "4O4NOTANUMBER";  // letter O, not zero
          demo.lines[index] = maras::Join(fields, kDelim);
          record(spec.kind, demo, index, primary, "caseid replaced with '" +
                                                      fields[1] + "'");
          break;
        }
        case FaultKind::kDuplicatePrimaryId: {
          // Duplicate an undamaged row: the reader keeps the first
          // occurrence and quarantines the appended copy. The source row is
          // reserved (pick_victim) so no later fault damages it — that
          // would turn the appended copy into the surviving occurrence and
          // silently absorb the duplicate fault.
          size_t index = 0;
          uint64_t primary = 0;
          if (!pick_victim(&demo, &index, &primary)) {
            return maras::Status::InvalidArgument(
                "not enough clean DEMO rows for duplicate-primaryid");
          }
          demo.lines.push_back(demo.lines[index]);
          record(spec.kind, demo, demo.lines.size() - 1, primary,
                 "re-appended DEMO line " + std::to_string(index + 1));
          break;
        }
        case FaultKind::kOrphanDrugRow:
        case FaultKind::kOrphanReacRow: {
          MutableTable* table =
              spec.kind == FaultKind::kOrphanDrugRow ? &drug : &reac;
          uint64_t phantom = next_phantom++;
          std::string row =
              spec.kind == FaultKind::kOrphanDrugRow
                  ? std::to_string(phantom) + "$" +
                        std::to_string(phantom / 100) + "$1$PS$PHANTOMDRUG"
                  : std::to_string(phantom) + "$" +
                        std::to_string(phantom / 100) + "$PHANTOM REACTION";
          table->lines.push_back(row);
          record(spec.kind, *table, table->lines.size() - 1, 0,
                 "appended orphan row with primaryid " +
                     std::to_string(phantom));
          break;
        }
        case FaultKind::kMissingFile: {
          const MutableTable* choices[] = {&demo, &drug, &reac};
          std::string name;
          for (int attempt = 0; attempt < 16 && name.empty(); ++attempt) {
            const MutableTable* pick = choices[rng.Uniform(3)];
            if (std::find(result.missing.begin(), result.missing.end(),
                          pick->name) == result.missing.end()) {
              name = pick->name;
            }
          }
          if (name.empty()) {
            return maras::Status::InvalidArgument(
                "all three files already missing");
          }
          result.missing.push_back(name);
          result.faults.push_back(InjectedFault{
              spec.kind, name, 0, 0, "file removed from the extract"});
          break;
        }
      }
    }
  }

  result.files.demo = JoinLines(demo.lines);
  result.files.drug = JoinLines(drug.lines);
  result.files.reac = JoinLines(reac.lines);
  return result;
}

maras::Status WriteCorruptedQuarterToDir(const CorruptionResult& result,
                                         const std::string& directory,
                                         int year, int quarter) {
  std::string suffix = FileSuffix(year, quarter);
  struct Entry {
    const char* prefix;
    const std::string* content;
  };
  for (const Entry& entry : {Entry{"DEMO", &result.files.demo},
                             Entry{"DRUG", &result.files.drug},
                             Entry{"REAC", &result.files.reac}}) {
    std::string path = directory + "/" + entry.prefix + suffix + ".txt";
    bool missing = std::find(result.missing.begin(), result.missing.end(),
                             entry.prefix) != result.missing.end();
    if (missing) {
      std::remove(path.c_str());  // tolerate the file not existing
      continue;
    }
    MARAS_RETURN_IF_ERROR_CTX(maras::AtomicWriteStringToFile(path, *entry.content),
                              path);
  }
  return maras::Status::OK();
}

maras::Status TruncateFileAt(const std::string& path, size_t offset) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    return maras::Status::IOError("cannot stat " + path + ": " + ec.message());
  }
  if (offset > size) {
    return maras::Status::InvalidArgument(
        "truncate offset " + std::to_string(offset) + " past end of " + path +
        " (" + std::to_string(size) + " bytes)");
  }
  std::filesystem::resize_file(path, offset, ec);
  if (ec) {
    return maras::Status::IOError("cannot truncate " + path + ": " +
                                  ec.message());
  }
  return maras::Status::OK();
}

maras::StatusOr<TornFile> TearFileMidRecord(const std::string& content,
                                            uint64_t seed) {
  std::vector<std::string> lines = SplitLines(content);
  // Candidate victims: data rows (line 2 onward) at least two bytes wide, so
  // a cut can land strictly inside the row and leave a malformed remnant.
  std::vector<size_t> candidates;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].size() >= 2) candidates.push_back(i);
  }
  if (candidates.empty()) {
    return maras::Status::InvalidArgument(
        "no data row wide enough to tear mid-record");
  }
  maras::Rng rng(seed);
  const size_t victim = candidates[rng.Uniform(candidates.size())];
  // Cut after at least one byte of the row and before its last byte.
  const size_t within =
      1 + static_cast<size_t>(rng.Uniform(lines[victim].size() - 1));
  size_t offset = 0;
  for (size_t i = 0; i < victim; ++i) offset += lines[i].size() + 1;
  offset += within;
  TornFile torn;
  torn.offset = offset;
  torn.content = content.substr(0, offset);
  torn.first_lost_line = victim + 1;  // 1-based
  torn.damaged_primary_id = LeadingPrimaryId(lines[victim]);
  return torn;
}

}  // namespace maras::faers

