#ifndef MARAS_FAERS_GENERATOR_H_
#define MARAS_FAERS_GENERATOR_H_

#include <string>
#include <vector>

#include "faers/report.h"
#include "faers/vocabulary.h"
#include "util/random.h"
#include "util/statusor.h"

namespace maras::faers {

// One injected multi-drug ADR signal: `reports` cases take all of `drugs`
// together and exhibit `adrs`. To make the signal *exclusive* (the property
// MARAS ranks by), the individual drugs also appear throughout the
// background where the ADRs do not follow; `single_drug_leak` controls how
// often a signal case drops to a single drug of the combination (leakage
// weakens exclusiveness — set it high to build non-interesting combos).
struct SignalSpec {
  std::string name;
  std::vector<std::string> drugs;
  std::vector<std::string> adrs;
  size_t reports = 60;
  double single_drug_leak = 0.05;
  // Probability that a combo report actually manifests the ADRs — real
  // interactions do not fire in every patient, so the true-signal rules
  // have moderate confidence while remaining exclusive. (Reports without
  // the signal ADRs get background reactions instead.)
  double adr_penetrance = 0.75;
  // Mean number of extra background drugs / ADRs mixed into each signal
  // report (reports in FAERS rarely list the interacting pair alone).
  double extra_drugs_mean = 1.0;
  double extra_adrs_mean = 0.5;
};

// A strong single-drug effect: whenever `drug` appears in a report (alone
// or co-medicated), its ADRs are attached with probability `attach_prob`.
// These create the high-confidence but *non-exclusive* multi-drug decoys
// that dominate the naive confidence/lift rankings in the paper's
// Table 5.2 — e.g. two antacids taken together are almost always reported
// with osteoporosis, yet each alone already explains it (therapeutic
// duplication, Case III).
struct SingleDrugEffectSpec {
  std::string drug;
  std::vector<std::string> adrs;
  // P(ADRs reported | drug present in the report).
  double attach_prob = 0.75;
};

struct GeneratorConfig {
  uint64_t seed = 20140101;
  int year = 2014;
  int quarter = 1;
  size_t n_reports = 25000;  // background reports (signals add on top)
  // Vocabulary sizes; curated names come first, synthetic names pad the rest.
  size_t n_drugs = 2500;
  size_t n_adrs = 900;
  // Zipf exponents for background popularity skew (FAERS is heavy-tailed).
  double drug_zipf_s = 1.02;
  double adr_zipf_s = 1.02;
  // Per-report cardinalities (Poisson + 1).
  double mean_extra_drugs_per_report = 2.2;
  double mean_extra_adrs_per_report = 1.6;
  // Name-dirtiness knobs, exercising the cleaning pipeline.
  double misspelling_rate = 0.015;
  double alias_rate = 0.10;
  double dose_decoration_rate = 0.05;
  // Share of reports marked expedited (the paper keeps EXP only).
  double expedited_fraction = 0.85;

  std::vector<SignalSpec> signals;
  std::vector<SingleDrugEffectSpec> single_drug_effects;
};

// Returns the default injected signals: the paper's case studies and table
// examples (from KnownInteractions()), scaled for `n_reports`.
std::vector<SignalSpec> DefaultSignals(size_t n_reports);

// Default single-drug effects mimicking Table 5.2's antacid/osteoporosis and
// transplant clusters.
std::vector<SingleDrugEffectSpec> DefaultSingleDrugEffects(size_t n_reports);

// What the generator actually injected — benches verify recovery against it.
struct GroundTruth {
  std::vector<SignalSpec> signals;
  std::vector<SingleDrugEffectSpec> single_drug_effects;
};

// Deterministic synthetic FAERS quarter generator.
class SyntheticGenerator {
 public:
  explicit SyntheticGenerator(GeneratorConfig config);

  // Generates one quarter. The same config (incl. seed) always produces the
  // identical dataset.
  maras::StatusOr<QuarterDataset> Generate() const;

  const GroundTruth& ground_truth() const { return ground_truth_; }
  const GeneratorConfig& config() const { return config_; }

  // The full (clean, canonical) vocabularies the generator draws from.
  const std::vector<std::string>& drug_vocabulary() const { return drugs_; }
  const std::vector<std::string>& adr_vocabulary() const { return adrs_; }

 private:
  // Renders a canonical drug name as the verbatim string a reporter would
  // type: maybe an alias, maybe misspelled, maybe dose-decorated.
  std::string DirtyDrugName(const std::string& canonical, maras::Rng* rng) const;
  std::string Misspell(const std::string& name, maras::Rng* rng) const;

  // Appends `count` distinct canonical background names drawn from `zipf`.
  void FillBackgroundDrugs(size_t count, const maras::ZipfTable& zipf,
                           maras::Rng* rng,
                           std::vector<std::string>* drugs) const;
  void FillBackgroundAdrs(size_t count, const maras::ZipfTable& zipf,
                          maras::Rng* rng, Report* report) const;

  // Attaches single-drug-effect ADRs for every effect drug present in
  // `drugs`, then renders the final (dirty) report content.
  void FinishReport(const std::vector<std::string>& drugs,
                    const maras::ZipfTable& adr_zipf, maras::Rng* rng,
                    Report* report) const;

  GeneratorConfig config_;
  GroundTruth ground_truth_;
  std::vector<std::string> drugs_;
  std::vector<std::string> adrs_;
};

}  // namespace maras::faers

#endif  // MARAS_FAERS_GENERATOR_H_
