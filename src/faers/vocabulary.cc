#include "faers/vocabulary.h"

#include <cstdio>

namespace maras::faers {

const std::vector<std::string>& CuratedDrugNames() {
  static const auto* names = new std::vector<std::string>{
      // Drugs named in the paper's tables, case studies and examples.
      "ASPIRIN", "WARFARIN", "IBUPROFEN", "METAMIZOLE", "METHOTREXATE",
      "PROGRAF", "PREVACID", "NEXIUM", "ZOMETA", "PRILOSEC", "ZANTAC",
      "TUMS", "MYLANTA", "ROLAIDS", "MELPHALAN", "FLUDARABINE", "XOLAIR",
      "SINGULAIR", "PREDNISONE", "AMBIEN", "PEPCID",
      // Common FAERS background drugs.
      "ACETAMINOPHEN", "METFORMIN", "LISINOPRIL", "ATORVASTATIN",
      "SIMVASTATIN", "AMLODIPINE", "OMEPRAZOLE", "LEVOTHYROXINE",
      "GABAPENTIN", "HYDROCHLOROTHIAZIDE", "SERTRALINE", "FLUOXETINE",
      "ALPRAZOLAM", "TRAMADOL", "OXYCODONE", "FUROSEMIDE", "INSULIN",
      "CLOPIDOGREL", "RIVAROXABAN", "APIXABAN", "DIGOXIN", "AMIODARONE",
      "CARVEDILOL", "METOPROLOL", "LOSARTAN", "VALSARTAN", "RAMIPRIL",
      "PANTOPRAZOLE", "RANITIDINE", "CELECOXIB", "NAPROXEN", "DICLOFENAC",
      "PREGABALIN", "DULOXETINE", "VENLAFAXINE", "CITALOPRAM",
      "ESCITALOPRAM", "QUETIAPINE", "RISPERIDONE", "OLANZAPINE",
      "ARIPIPRAZOLE", "LAMOTRIGINE", "LEVETIRACETAM", "CARBAMAZEPINE",
      "PHENYTOIN", "VALPROATE", "TOPIRAMATE", "ZOLPIDEM", "LORAZEPAM",
      "CLONAZEPAM", "DIAZEPAM", "MORPHINE", "FENTANYL", "HYDROMORPHONE",
      "PREDNISOLONE", "DEXAMETHASONE", "HYDROCORTISONE", "AZATHIOPRINE",
      "CYCLOSPORINE", "SIROLIMUS", "EVEROLIMUS", "MYCOPHENOLATE",
      "RITUXIMAB", "INFLIXIMAB", "ADALIMUMAB", "ETANERCEPT", "HUMIRA",
      "ENBREL", "REMICADE", "CISPLATIN", "CARBOPLATIN", "PACLITAXEL",
      "DOCETAXEL", "DOXORUBICIN", "CYCLOPHOSPHAMIDE", "VINCRISTINE",
      "BORTEZOMIB", "LENALIDOMIDE", "THALIDOMIDE", "IMATINIB", "ERLOTINIB",
      "GEFITINIB", "SUNITINIB", "SORAFENIB", "BEVACIZUMAB", "TRASTUZUMAB",
      "CETUXIMAB", "ALLOPURINOL", "COLCHICINE", "METHYLPREDNISOLONE",
      "CIPROFLOXACIN", "LEVOFLOXACIN", "AMOXICILLIN", "AZITHROMYCIN",
      "CLARITHROMYCIN", "DOXYCYCLINE", "VANCOMYCIN", "FLUCONAZOLE",
      "KETOCONAZOLE", "ACYCLOVIR", "VALACYCLOVIR", "TENOFOVIR",
      "EMTRICITABINE", "EFAVIRENZ", "RITONAVIR", "LOPINAVIR",
  };
  return *names;
}

const std::vector<std::string>& CuratedAdrTerms() {
  static const auto* terms = new std::vector<std::string>{
      // Reactions named in the paper.
      "OSTEOPOROSIS", "OSTEOARTHRITIS", "OSTEONECROSIS OF JAW", "PAIN",
      "NEUROPATHY PERIPHERAL", "DRUG INEFFECTIVE",
      "CHRONIC GRAFT VERSUS HOST DISEASE", "ACUTE GRAFT VERSUS HOST DISEASE",
      "GRANULOCYTE COLONY-STIMULATING FACTOR NOS", "ANXIETY", "ANAEMIA",
      "ASTHMA", "ACUTE RENAL FAILURE", "HAEMORRHAGE", "OSTEOPENIA",
      // Common FAERS preferred terms.
      "NAUSEA", "VOMITING", "DIARRHOEA", "HEADACHE", "DIZZINESS", "FATIGUE",
      "RASH", "PRURITUS", "URTICARIA", "DYSPNOEA", "PYREXIA", "INSOMNIA",
      "SOMNOLENCE", "CONSTIPATION", "ABDOMINAL PAIN", "DEPRESSION",
      "TREMOR", "CONVULSION", "HYPOTENSION", "HYPERTENSION", "TACHYCARDIA",
      "BRADYCARDIA", "ATRIAL FIBRILLATION", "CARDIAC ARREST",
      "MYOCARDIAL INFARCTION", "CEREBROVASCULAR ACCIDENT",
      "PULMONARY EMBOLISM", "DEEP VEIN THROMBOSIS",
      "GASTROINTESTINAL HAEMORRHAGE", "HEPATOTOXICITY", "HEPATIC FAILURE",
      "JAUNDICE", "RENAL IMPAIRMENT", "RENAL FAILURE", "PROTEINURIA",
      "HYPERGLYCAEMIA", "HYPOGLYCAEMIA", "HYPONATRAEMIA", "HYPOKALAEMIA",
      "HYPERKALAEMIA", "NEUTROPENIA", "THROMBOCYTOPENIA", "LEUKOPENIA",
      "PANCYTOPENIA", "FEBRILE NEUTROPENIA", "SEPSIS", "PNEUMONIA",
      "URINARY TRACT INFECTION", "ANAPHYLACTIC REACTION", "ANGIOEDEMA",
      "STEVENS-JOHNSON SYNDROME", "TOXIC EPIDERMAL NECROLYSIS",
      "QT PROLONGED", "TORSADE DE POINTES", "RHABDOMYOLYSIS", "MYALGIA",
      "ARTHRALGIA", "BONE FRACTURE", "FALL", "WEIGHT DECREASED",
      "WEIGHT INCREASED", "ALOPECIA", "STOMATITIS", "MUCOSAL INFLAMMATION",
      "DYSGEUSIA", "VISION BLURRED", "TINNITUS", "VERTIGO", "SYNCOPE",
      "CONFUSIONAL STATE", "HALLUCINATION", "AGITATION", "SUICIDAL IDEATION",
      "COMPLETED SUICIDE", "DEATH", "DRUG INTERACTION",
      "OFF LABEL USE", "DRUG ABUSE", "OVERDOSE", "MEDICATION ERROR",
  };
  return *terms;
}

const std::vector<DrugAlias>& CuratedDrugAliases() {
  static const auto* aliases = new std::vector<DrugAlias>{
      {"TACROLIMUS", "PROGRAF"},
      {"LANSOPRAZOLE", "PREVACID"},
      {"ESOMEPRAZOLE", "NEXIUM"},
      {"ZOLEDRONIC ACID", "ZOMETA"},
      {"OMALIZUMAB", "XOLAIR"},
      {"MONTELUKAST", "SINGULAIR"},
      {"ZOLPIDEM TARTRATE", "AMBIEN"},
      {"FAMOTIDINE", "PEPCID"},
      {"ACETYLSALICYLIC ACID", "ASPIRIN"},
      {"COUMADIN", "WARFARIN"},
      {"ADVIL", "IBUPROFEN"},
      {"MOTRIN", "IBUPROFEN"},
      {"DIPYRONE", "METAMIZOLE"},
      {"TYLENOL", "ACETAMINOPHEN"},
      {"PARACETAMOL", "ACETAMINOPHEN"},
      {"GLUCOPHAGE", "METFORMIN"},
      {"LIPITOR", "ATORVASTATIN"},
      {"ZOCOR", "SIMVASTATIN"},
      {"NORVASC", "AMLODIPINE"},
      {"LASIX", "FUROSEMIDE"},
      {"PLAVIX", "CLOPIDOGREL"},
      {"XARELTO", "RIVAROXABAN"},
      {"ELIQUIS", "APIXABAN"},
      {"XANAX", "ALPRAZOLAM"},
      {"VALIUM", "DIAZEPAM"},
      {"ATIVAN", "LORAZEPAM"},
      {"KLONOPIN", "CLONAZEPAM"},
      {"NEURONTIN", "GABAPENTIN"},
      {"LYRICA", "PREGABALIN"},
      {"CYMBALTA", "DULOXETINE"},
      {"EFFEXOR", "VENLAFAXINE"},
      {"ZOLOFT", "SERTRALINE"},
      {"PROZAC", "FLUOXETINE"},
      {"CELEXA", "CITALOPRAM"},
      {"LEXAPRO", "ESCITALOPRAM"},
      {"SEROQUEL", "QUETIAPINE"},
      {"RISPERDAL", "RISPERIDONE"},
      {"ZYPREXA", "OLANZAPINE"},
      {"ABILIFY", "ARIPIPRAZOLE"},
  };
  return *aliases;
}

const std::vector<KnownInteraction>& KnownInteractions() {
  static const auto* interactions = new std::vector<KnownInteraction>{
      {"case1_ibuprofen_metamizole",
       {"IBUPROFEN", "METAMIZOLE"},
       {"ACUTE RENAL FAILURE"},
       "WHO Pharmaceuticals Newsletter 2014 (VigiBase): combined NSAID use "
       "associated with acute renal failure",
       /*exposure_multiplier=*/5.0},
      {"case2_methotrexate_prograf",
       {"METHOTREXATE", "PROGRAF"},
       {"DRUG INEFFECTIVE"},
       "Drugs.com / DrugBank: methotrexate + tacrolimus nephrotoxicity and "
       "reduced efficacy"},
      {"case3_prevacid_nexium",
       {"PREVACID", "NEXIUM"},
       {"OSTEOPOROSIS"},
       "Drugs.com therapeutic duplication: concurrent PPIs raise "
       "osteoporosis/fracture risk"},
      {"intro_aspirin_warfarin",
       {"ASPIRIN", "WARFARIN"},
       {"HAEMORRHAGE"},
       "Chan 1995: warfarin + NSAIDs -> excessive bleeding",
       /*exposure_multiplier=*/6.0},
      {"table52_zometa_prilosec",
       {"ZOMETA", "PRILOSEC"},
       {"OSTEONECROSIS OF JAW", "OSTEOARTHRITIS", "NEUROPATHY PERIPHERAL",
        "PAIN"},
       "Paper Table 5.2 exclusiveness-with-confidence top association"},
      {"table31_xolair_singulair_prednisone",
       {"XOLAIR", "SINGULAIR", "PREDNISONE"},
       {"ASTHMA"},
       "Paper Table 3.1 MCAC example (three-drug target rule)"},
      {"gvhd_prograf_methotrexate_melphalan",
       {"PROGRAF", "MELPHALAN", "FLUDARABINE"},
       {"ACUTE GRAFT VERSUS HOST DISEASE"},
       "Paper Table 5.2 exclusiveness-with-lift transplant-regimen cluster"},
      {"hiv_regimen_tenofovir",
       {"TENOFOVIR", "EMTRICITABINE", "EFAVIRENZ", "RITONAVIR"},
       {"RENAL IMPAIRMENT"},
       "Tenofovir nephrotoxicity potentiated by ritonavir boosting "
       "(four-drug regimen; exercises the 4-drug glyph/user-study path)",
       /*exposure_multiplier=*/1.5},
  };
  return *interactions;
}

std::vector<std::string> SyntheticNames(const std::string& prefix,
                                        size_t count) {
  std::vector<std::string> names;
  names.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%s%05zu", prefix.c_str(), i);
    names.emplace_back(buf);
  }
  return names;
}

}  // namespace maras::faers
