#ifndef MARAS_FAERS_OPENFDA_H_
#define MARAS_FAERS_OPENFDA_H_

#include <string>

#include "faers/report.h"
#include "util/statusor.h"

namespace maras::faers {

// Reader/writer for the openFDA drug-event JSON format — the public API the
// paper's data-source citation points at (open.fda.gov/drug/event). The
// subset of fields MARAS consumes:
//
//   {"results": [{
//      "safetyreportid": "10012345",
//      "safetyreportversion": "2",
//      "fulfillexpeditecriteria": "1",           // 1 = expedited (EXP)
//      "occurcountry": "US",
//      "patient": {
//        "patientsex": "2",                       // 1 = male, 2 = female
//        "patientonsetage": "63",
//        "drug":     [{"medicinalproduct": "ASPIRIN"}, ...],
//        "reaction": [{"reactionmeddrapt": "HAEMORRHAGE"}, ...]
//      }}]}
//
// Unknown fields are ignored on read (openFDA events carry dozens more);
// missing optional fields default. A result without a safetyreportid, any
// drug, or any reaction is skipped and counted, mirroring how analysis
// pipelines treat incomplete spontaneous reports.
struct OpenFdaReadStats {
  size_t results_total = 0;
  size_t reports_loaded = 0;
  size_t skipped_incomplete = 0;
};

maras::StatusOr<QuarterDataset> ReadOpenFdaEvents(
    const std::string& json_text, int year, int quarter,
    OpenFdaReadStats* stats = nullptr);

// Serializes a dataset into the same shape (pretty-printed), so synthetic
// corpora can exercise any openFDA-consuming tool.
maras::StatusOr<std::string> WriteOpenFdaEvents(const QuarterDataset& dataset);

}  // namespace maras::faers

#endif  // MARAS_FAERS_OPENFDA_H_
