#include "faers/drug_classes.h"

namespace maras::faers {

const std::vector<DrugClassEntry>& CuratedDrugClasses() {
  static const auto* entries = new std::vector<DrugClassEntry>{
      // Analgesics / anti-inflammatories.
      {"ASPIRIN", "NSAID"},
      {"IBUPROFEN", "NSAID"},
      {"NAPROXEN", "NSAID"},
      {"DICLOFENAC", "NSAID"},
      {"CELECOXIB", "NSAID"},
      {"METAMIZOLE", "NONOPIOID ANALGESIC"},
      {"ACETAMINOPHEN", "NONOPIOID ANALGESIC"},
      {"TRAMADOL", "OPIOID"},
      {"OXYCODONE", "OPIOID"},
      {"MORPHINE", "OPIOID"},
      {"FENTANYL", "OPIOID"},
      {"HYDROMORPHONE", "OPIOID"},
      // Anticoagulants / antiplatelets.
      {"WARFARIN", "ANTICOAGULANT"},
      {"RIVAROXABAN", "ANTICOAGULANT"},
      {"APIXABAN", "ANTICOAGULANT"},
      {"CLOPIDOGREL", "ANTIPLATELET"},
      // Acid suppression.
      {"PRILOSEC", "PPI"},
      {"PREVACID", "PPI"},
      {"NEXIUM", "PPI"},
      {"OMEPRAZOLE", "PPI"},
      {"PANTOPRAZOLE", "PPI"},
      {"ZANTAC", "H2 BLOCKER"},
      {"PEPCID", "H2 BLOCKER"},
      {"RANITIDINE", "H2 BLOCKER"},
      {"TUMS", "ANTACID"},
      {"MYLANTA", "ANTACID"},
      {"ROLAIDS", "ANTACID"},
      // Immunosuppressants / transplant.
      {"PROGRAF", "IMMUNOSUPPRESSANT"},
      {"CYCLOSPORINE", "IMMUNOSUPPRESSANT"},
      {"SIROLIMUS", "IMMUNOSUPPRESSANT"},
      {"EVEROLIMUS", "IMMUNOSUPPRESSANT"},
      {"MYCOPHENOLATE", "IMMUNOSUPPRESSANT"},
      {"AZATHIOPRINE", "IMMUNOSUPPRESSANT"},
      {"METHOTREXATE", "ANTIMETABOLITE"},
      {"FLUDARABINE", "ANTIMETABOLITE"},
      // Corticosteroids.
      {"PREDNISONE", "CORTICOSTEROID"},
      {"PREDNISOLONE", "CORTICOSTEROID"},
      {"METHYLPREDNISOLONE", "CORTICOSTEROID"},
      {"DEXAMETHASONE", "CORTICOSTEROID"},
      {"HYDROCORTISONE", "CORTICOSTEROID"},
      // Cardio.
      {"ATORVASTATIN", "STATIN"},
      {"SIMVASTATIN", "STATIN"},
      {"LISINOPRIL", "ACE INHIBITOR"},
      {"RAMIPRIL", "ACE INHIBITOR"},
      {"LOSARTAN", "ARB"},
      {"VALSARTAN", "ARB"},
      {"METOPROLOL", "BETA BLOCKER"},
      {"CARVEDILOL", "BETA BLOCKER"},
      {"AMLODIPINE", "CALCIUM CHANNEL BLOCKER"},
      {"FUROSEMIDE", "DIURETIC"},
      {"HYDROCHLOROTHIAZIDE", "DIURETIC"},
      {"DIGOXIN", "CARDIAC GLYCOSIDE"},
      {"AMIODARONE", "ANTIARRHYTHMIC"},
      // Psych / neuro.
      {"SERTRALINE", "SSRI"},
      {"FLUOXETINE", "SSRI"},
      {"CITALOPRAM", "SSRI"},
      {"ESCITALOPRAM", "SSRI"},
      {"DULOXETINE", "SNRI"},
      {"VENLAFAXINE", "SNRI"},
      {"ALPRAZOLAM", "BENZODIAZEPINE"},
      {"LORAZEPAM", "BENZODIAZEPINE"},
      {"CLONAZEPAM", "BENZODIAZEPINE"},
      {"DIAZEPAM", "BENZODIAZEPINE"},
      {"ZOLPIDEM", "HYPNOTIC"},
      {"AMBIEN", "HYPNOTIC"},
      {"QUETIAPINE", "ANTIPSYCHOTIC"},
      {"RISPERIDONE", "ANTIPSYCHOTIC"},
      {"OLANZAPINE", "ANTIPSYCHOTIC"},
      {"ARIPIPRAZOLE", "ANTIPSYCHOTIC"},
      {"GABAPENTIN", "ANTICONVULSANT"},
      {"PREGABALIN", "ANTICONVULSANT"},
      {"LAMOTRIGINE", "ANTICONVULSANT"},
      {"LEVETIRACETAM", "ANTICONVULSANT"},
      {"CARBAMAZEPINE", "ANTICONVULSANT"},
      {"PHENYTOIN", "ANTICONVULSANT"},
      {"VALPROATE", "ANTICONVULSANT"},
      {"TOPIRAMATE", "ANTICONVULSANT"},
      // Respiratory / allergy.
      {"XOLAIR", "BIOLOGIC"},
      {"SINGULAIR", "LEUKOTRIENE ANTAGONIST"},
      // Oncology / bone.
      {"ZOMETA", "BISPHOSPHONATE"},
      {"MELPHALAN", "ALKYLATING AGENT"},
      {"CYCLOPHOSPHAMIDE", "ALKYLATING AGENT"},
      {"CISPLATIN", "PLATINUM AGENT"},
      {"CARBOPLATIN", "PLATINUM AGENT"},
      {"PACLITAXEL", "TAXANE"},
      {"DOCETAXEL", "TAXANE"},
      // Anti-infectives.
      {"CIPROFLOXACIN", "FLUOROQUINOLONE"},
      {"LEVOFLOXACIN", "FLUOROQUINOLONE"},
      {"AMOXICILLIN", "PENICILLIN"},
      {"AZITHROMYCIN", "MACROLIDE"},
      {"CLARITHROMYCIN", "MACROLIDE"},
      {"FLUCONAZOLE", "AZOLE ANTIFUNGAL"},
      {"KETOCONAZOLE", "AZOLE ANTIFUNGAL"},
      {"TENOFOVIR", "ANTIRETROVIRAL"},
      {"EMTRICITABINE", "ANTIRETROVIRAL"},
      {"EFAVIRENZ", "ANTIRETROVIRAL"},
      {"RITONAVIR", "ANTIRETROVIRAL"},
      {"LOPINAVIR", "ANTIRETROVIRAL"},
  };
  return *entries;
}

void ClassMap::Add(std::string_view drug, std::string_view drug_class) {
  map_[std::string(drug)] = std::string(drug_class);
}

std::optional<std::string> ClassMap::Lookup(std::string_view drug) const {
  auto it = map_.find(std::string(drug));
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

ClassMap ClassMap::Curated() {
  ClassMap map;
  for (const DrugClassEntry& entry : CuratedDrugClasses()) {
    map.Add(entry.drug, entry.drug_class);
  }
  return map;
}

maras::StatusOr<PreprocessResult> AggregateToClasses(
    const PreprocessResult& input, const ClassMap& classes) {
  PreprocessResult output;
  output.stats = input.stats;
  output.primary_ids = input.primary_ids;
  output.demographics = input.demographics;

  // Old item id -> new item id, computed once.
  std::vector<mining::ItemId> remap(input.items.size());
  for (size_t old_id = 0; old_id < input.items.size(); ++old_id) {
    auto id = static_cast<mining::ItemId>(old_id);
    const std::string& name = input.items.Name(id);
    mining::ItemDomain domain = input.items.Domain(id);
    std::string new_name = name;
    if (domain == mining::ItemDomain::kDrug) {
      if (auto drug_class = classes.Lookup(name); drug_class.has_value()) {
        new_name = "CLASS:" + *drug_class;
      }
    }
    MARAS_ASSIGN_OR_RETURN(remap[old_id],
                           output.items.Intern(new_name, domain));
  }

  for (size_t t = 0; t < input.transactions.size(); ++t) {
    mining::Itemset transaction;
    for (mining::ItemId old_id : input.transactions.transaction(
             static_cast<mining::TransactionId>(t))) {
      transaction.push_back(remap[old_id]);
    }
    // Add() sorts and collapses duplicate class mentions.
    output.transactions.Add(std::move(transaction));
  }
  output.stats.distinct_drugs =
      output.items.CountInDomain(mining::ItemDomain::kDrug);
  output.stats.distinct_adrs =
      output.items.CountInDomain(mining::ItemDomain::kAdr);
  return output;
}

}  // namespace maras::faers
