#include "faers/preprocess.h"

#include <algorithm>

#include "faers/vocabulary.h"

namespace maras::faers {

Preprocessor::Preprocessor(PreprocessOptions options)
    : options_(std::move(options)) {
  if (options_.use_curated_vocabulary) {
    for (const std::string& name : CuratedDrugNames()) {
      drug_dictionary_.AddCanonical(name);
    }
    for (const DrugAlias& alias : CuratedDrugAliases()) {
      // Aliases are pre-normalized uppercase; failure means alias ==
      // canonical which the curated table never contains.
      MARAS_IGNORE_STATUS(drug_dictionary_.AddAlias(alias.alias,
                                                    alias.canonical));
    }
  }
}

std::string Preprocessor::CleanDrugName(
    const std::string& raw,
    std::unordered_map<std::string, std::string>* cache,
    PreprocessStats* stats) const {
  std::string normalized = text::NormalizeName(raw, options_.normalizer);
  if (auto it = cache->find(normalized); it != cache->end()) {
    return it->second;
  }
  std::string resolved = normalized;
  text::Dictionary::Match match =
      drug_dictionary_.Resolve(normalized, options_.max_edit_distance);
  switch (match.kind) {
    case text::Dictionary::MatchKind::kExact:
      resolved = match.canonical;
      break;
    case text::Dictionary::MatchKind::kAlias:
      resolved = match.canonical;
      ++stats->alias_resolutions;
      break;
    case text::Dictionary::MatchKind::kFuzzy:
      resolved = match.canonical;
      ++stats->fuzzy_corrections;
      break;
    case text::Dictionary::MatchKind::kNone:
      break;  // keep the normalized verbatim name as its own vocabulary entry
  }
  (*cache)[normalized] = resolved;
  return resolved;
}

maras::StatusOr<PreprocessResult> Preprocessor::Process(
    const QuarterDataset& dataset, IngestReport* report) const {
  auto result = Process(dataset);
  if (result.ok() && report != nullptr) {
    const PreprocessStats& stats = result->stats;
    auto note = [&](size_t count, const char* what) {
      if (count == 0) return;
      report->warnings.push_back(dataset.Label() + ": " +
                                 std::to_string(count) + " " + what);
    };
    note(stats.dropped_not_expedited, "reports dropped as non-expedited");
    note(stats.dropped_stale_version, "stale case versions dropped");
    note(stats.dropped_empty,
         "reports dropped with no drugs or no reactions after cleaning");
  }
  return result;
}

maras::StatusOr<PreprocessResult> Preprocessor::Process(
    const QuarterDataset& dataset) const {
  PreprocessResult result;
  result.stats.reports_in = dataset.reports.size();

  // Pass 1: select report versions. For each case id, remember the highest
  // version among reports passing the EXP filter.
  std::unordered_map<uint64_t, uint32_t> latest_version;
  if (options_.keep_latest_case_version) {
    for (const Report& report : dataset.reports) {
      if (options_.expedited_only && report.type != ReportType::kExpedited) {
        continue;
      }
      auto [it, inserted] =
          latest_version.emplace(report.case_id, report.case_version);
      if (!inserted && report.case_version > it->second) {
        it->second = report.case_version;
      }
    }
  }

  // Memoizes normalized-name -> canonical resolution across the quarter.
  std::unordered_map<std::string, std::string> cache;

  for (const Report& report : dataset.reports) {
    if (options_.expedited_only && report.type != ReportType::kExpedited) {
      ++result.stats.dropped_not_expedited;
      continue;
    }
    if (options_.keep_latest_case_version) {
      auto it = latest_version.find(report.case_id);
      if (it != latest_version.end() && report.case_version < it->second) {
        ++result.stats.dropped_stale_version;
        continue;
      }
    }
    mining::Itemset transaction;
    for (const std::string& raw : report.drugs) {
      std::string name = CleanDrugName(raw, &cache, &result.stats);
      if (name.empty()) continue;
      MARAS_ASSIGN_OR_RETURN(
          mining::ItemId id,
          result.items.Intern(name, mining::ItemDomain::kDrug));
      transaction.push_back(id);
      ++result.stats.drug_mentions;
    }
    size_t drug_items = transaction.size();
    for (const std::string& raw : report.reactions) {
      std::string name = text::NormalizeName(raw, options_.normalizer);
      if (name.empty()) continue;
      MARAS_ASSIGN_OR_RETURN(
          mining::ItemId id,
          result.items.Intern(name, mining::ItemDomain::kAdr));
      transaction.push_back(id);
      ++result.stats.adr_mentions;
    }
    if (drug_items == 0 || transaction.size() == drug_items) {
      ++result.stats.dropped_empty;
      continue;
    }
    result.transactions.Add(std::move(transaction));
    result.primary_ids.push_back(report.primary_id());
    result.demographics.push_back(CaseDemographics{report.sex, report.age});
    ++result.stats.reports_kept;
  }

  result.stats.distinct_drugs =
      result.items.CountInDomain(mining::ItemDomain::kDrug);
  result.stats.distinct_adrs =
      result.items.CountInDomain(mining::ItemDomain::kAdr);
  return result;
}

}  // namespace maras::faers
