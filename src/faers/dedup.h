#ifndef MARAS_FAERS_DEDUP_H_
#define MARAS_FAERS_DEDUP_H_

#include <cstdint>
#include <vector>

#include "faers/ingest.h"
#include "faers/report.h"

namespace maras::faers {

// ---------------------------------------------------------------------------
// Near-duplicate case detection. Beyond explicit case versions, FAERS
// contains the *same clinical event reported independently* — by the
// patient, the physician, and the manufacturer — under different case ids.
// Duplicates inflate supports and fabricate signal strength, so surveillance
// pipelines flag them before mining. Heuristic here: two reports are
// suspected duplicates when their full drug set, full reaction set, sex and
// age band coincide but their case ids differ (the standard fingerprint
// match used in deduplication literature).
// ---------------------------------------------------------------------------

struct DuplicateCluster {
  // Primary ids of the mutually-matching reports, in dataset order; always
  // at least two entries.
  std::vector<uint64_t> primary_ids;
};

struct DedupStats {
  size_t reports_checked = 0;
  size_t clusters = 0;
  size_t redundant_reports = 0;  // Σ (cluster size − 1)
};

// Finds suspected duplicate clusters. Reports with no drugs or no reactions
// never match (their fingerprints are too weak to be evidence).
std::vector<DuplicateCluster> FindDuplicateCases(const QuarterDataset& dataset,
                                                 DedupStats* stats = nullptr);

// Returns a copy of `dataset` with redundant duplicates removed: from each
// cluster only the first report (dataset order) survives.
QuarterDataset RemoveDuplicateCases(const QuarterDataset& dataset,
                                    DedupStats* stats = nullptr);

// As above, threading the ingestion report: records one warning summarizing
// the removal and, under kQuarantine, one warning per removed report naming
// its primaryid and the cluster representative it duplicated.
QuarterDataset RemoveDuplicateCases(const QuarterDataset& dataset,
                                    const IngestOptions& options,
                                    IngestReport* report,
                                    DedupStats* stats = nullptr);

}  // namespace maras::faers

#endif  // MARAS_FAERS_DEDUP_H_
