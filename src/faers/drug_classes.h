#ifndef MARAS_FAERS_DRUG_CLASSES_H_
#define MARAS_FAERS_DRUG_CLASSES_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "faers/preprocess.h"
#include "util/statusor.h"

namespace maras::faers {

// ---------------------------------------------------------------------------
// Therapeutic drug classes (ATC-style, coarse). The related work the paper
// cites (Tatonetti et al.) detects interactions *among drug classes*;
// aggregating the cleaned corpus to class granularity pools sparse
// same-mechanism combinations (every NSAID × every anticoagulant) into one
// strong class-level signal, at the cost of within-class resolution.
// ---------------------------------------------------------------------------

struct DrugClassEntry {
  std::string drug;        // canonical drug name
  std::string drug_class;  // e.g. "NSAID"
};

// Curated classes over this repository's drug vocabulary.
const std::vector<DrugClassEntry>& CuratedDrugClasses();

// Lookup table from canonical drug name to class.
class ClassMap {
 public:
  ClassMap() = default;

  void Add(std::string_view drug, std::string_view drug_class);

  // Class of `drug`, or nullopt when unclassified.
  std::optional<std::string> Lookup(std::string_view drug) const;

  size_t size() const { return map_.size(); }

  // Pre-loaded with CuratedDrugClasses().
  static ClassMap Curated();

 private:
  std::unordered_map<std::string, std::string> map_;
};

// Rewrites a cleaned corpus at class granularity: every classified drug
// item becomes its class item (prefixed "CLASS:"), unclassified drugs keep
// their own name, ADRs pass through, and duplicate class mentions within a
// report collapse. primary ids and demographics carry over, so drill-down
// from a class-level signal still reaches the raw reports.
maras::StatusOr<PreprocessResult> AggregateToClasses(
    const PreprocessResult& input, const ClassMap& classes);

}  // namespace maras::faers

#endif  // MARAS_FAERS_DRUG_CLASSES_H_
