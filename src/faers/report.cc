#include "faers/report.h"

namespace maras::faers {

std::string ReportTypeCode(ReportType type) {
  switch (type) {
    case ReportType::kExpedited:
      return "EXP";
    case ReportType::kPeriodic:
      return "PER";
    case ReportType::kDirect:
      return "DIR";
  }
  return "EXP";
}

bool ParseReportType(const std::string& code, ReportType* out) {
  if (code == "EXP") {
    *out = ReportType::kExpedited;
  } else if (code == "PER") {
    *out = ReportType::kPeriodic;
  } else if (code == "DIR") {
    *out = ReportType::kDirect;
  } else {
    return false;
  }
  return true;
}

std::string SexCode(Sex sex) {
  switch (sex) {
    case Sex::kFemale:
      return "F";
    case Sex::kMale:
      return "M";
    case Sex::kUnknown:
      return "UNK";
  }
  return "UNK";
}

bool ParseSex(const std::string& code, Sex* out) {
  if (code == "F") {
    *out = Sex::kFemale;
  } else if (code == "M") {
    *out = Sex::kMale;
  } else if (code == "UNK" || code.empty()) {
    *out = Sex::kUnknown;
  } else {
    return false;
  }
  return true;
}

}  // namespace maras::faers
