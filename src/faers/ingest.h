#ifndef MARAS_FAERS_INGEST_H_
#define MARAS_FAERS_INGEST_H_

#include <cstddef>
#include <string>
#include <vector>

namespace maras::faers {

// ---------------------------------------------------------------------------
// Ingestion recovery policy. Real FAERS quarterly extracts are dirty —
// truncated rows, embedded delimiters, orphaned DRUG/REAC rows, duplicate
// primaryids, garbage numerics — and a surveillance service cannot afford to
// lose a whole quarter to one bad line. Every reader in the faers layer
// threads an IngestPolicy:
//
//   kStrict      fail fast on the first malformed row (the reproduction
//                default: benches and recorded experiments need input to be
//                exactly what the generator wrote).
//   kPermissive  skip malformed rows and keep going, aborting only when the
//                bad-row fraction exceeds IngestOptions::max_bad_row_fraction.
//   kQuarantine  permissive, plus capture every rejected row with per-row
//                diagnostics (file, line, column, reason) for audit.
// ---------------------------------------------------------------------------
enum class IngestPolicy { kStrict, kPermissive, kQuarantine };

const char* IngestPolicyName(IngestPolicy policy);

// Root-cause classification of a rejected row. kCollateral marks rows that
// were themselves well-formed but referenced a rejected parent (DRUG/REAC
// rows of a quarantined DEMO row) — kept distinct so quarantine accounting
// can match injected faults one-to-one.
enum class RowFault {
  kMalformedRow,        // wrong field count (truncation, embedded delimiter)
  kBadNumeric,          // unparseable caseid / caseversion / primaryid / age
  kBadCode,             // unknown rept_cod or sex code
  kDuplicatePrimaryId,  // primaryid already ingested from an earlier row
  kOrphanRow,           // DRUG/REAC row whose primaryid has no DEMO row
  kCollateral,          // child row of a rejected DEMO row
};

const char* RowFaultName(RowFault fault);

// One rejected row, with enough context to audit or replay it.
struct QuarantinedRow {
  RowFault fault = RowFault::kMalformedRow;
  std::string file;    // source file, e.g. "DEMO14Q1.txt" (or "DEMO" in-memory)
  size_t line = 0;     // 1-based line number in that file
  std::string column;  // offending column name, empty for whole-row faults
  std::string reason;  // human-readable diagnosis
  std::string content; // verbatim row ('$'-joined), for forensics

  // "DEMO14Q1.txt:47 [bad-numeric] caseid: ..." — stable, grep-friendly.
  std::string ToString() const;
};

struct IngestOptions {
  IngestPolicy policy = IngestPolicy::kStrict;
  // Permissive/quarantine abort threshold: if more than this fraction of
  // data rows is rejected, the extract is declared unusable (Corruption)
  // rather than silently mined from a sliver of data.
  double max_bad_row_fraction = 0.05;
  // Cap on captured QuarantinedRow entries (counters keep counting past it;
  // guards memory on pathological extracts). 0 means unlimited.
  size_t max_quarantined_rows = 10000;
};

// Accounting for one ingestion pass, propagated up through preprocessing and
// multi-quarter surveillance so a degraded run is visible, not silent.
struct IngestReport {
  size_t rows_seen = 0;       // data rows examined across all tables
  size_t rows_rejected = 0;   // rows dropped for any reason (incl. collateral)
  size_t collateral_rows = 0; // subset of rows_rejected: parent was rejected
  size_t reports_ingested = 0;
  // Populated under kQuarantine only (subject to max_quarantined_rows).
  std::vector<QuarantinedRow> quarantined;
  // Set once the capture cap was hit (counters above remain exact).
  bool quarantine_overflow = false;
  // Quarter- or dataset-level notes: skipped quarters, exceeded caps,
  // validation downgrades. Never fatal on their own.
  std::vector<std::string> warnings;

  // Rejected rows whose fault is a root cause (not collateral damage).
  size_t FaultCount() const;
  // Quarantined rows with the given fault classification.
  size_t CountFault(RowFault fault) const;
  double rejected_fraction() const {
    return rows_seen == 0 ? 0.0
                          : static_cast<double>(rows_rejected) /
                                static_cast<double>(rows_seen);
  }

  // Appends a quarantined row respecting IngestOptions::max_quarantined_rows
  // (adds a single overflow warning the first time the cap is hit).
  void Quarantine(const IngestOptions& options, QuarantinedRow row);

  // Folds `other` into this report (multi-quarter aggregation).
  void Merge(const IngestReport& other);

  // One-line summary, e.g. "1203 rows, 7 rejected (2 collateral), 3 warnings".
  std::string Summary() const;
};

}  // namespace maras::faers

#endif  // MARAS_FAERS_INGEST_H_
