#include "faers/generator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace maras::faers {

namespace {

// Country pool for the occr_country demographic column.
constexpr const char* kCountries[] = {"US", "GB", "DE", "FR", "JP",
                                      "CA", "MX", "BR", "IT", "ES"};

size_t ScaledCount(size_t n_reports, double per_25k) {
  double scaled = per_25k * static_cast<double>(n_reports) / 25000.0;
  return scaled < 8.0 ? 8 : static_cast<size_t>(scaled);
}

}  // namespace

std::vector<SignalSpec> DefaultSignals(size_t n_reports) {
  std::vector<SignalSpec> specs;
  for (const KnownInteraction& known : KnownInteractions()) {
    SignalSpec spec;
    spec.name = known.name;
    spec.drugs = known.drugs;
    spec.adrs = known.adrs;
    spec.reports =
        ScaledCount(n_reports, 60.0 * known.exposure_multiplier);
    spec.single_drug_leak = 0.05;
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<SingleDrugEffectSpec> DefaultSingleDrugEffects(size_t n_reports) {
  (void)n_reports;  // attach probabilities are scale-free
  std::vector<SingleDrugEffectSpec> specs;
  // The antacid cluster that dominates Table 5.2's raw-confidence ranking:
  // each antacid alone is strongly associated with osteoporosis, so every
  // antacid pair forms a high-confidence but non-exclusive rule
  // (therapeutic duplication, Case III).
  for (const char* drug : {"ZANTAC", "TUMS", "MYLANTA", "ROLAIDS", "PEPCID"}) {
    specs.push_back(SingleDrugEffectSpec{drug, {"OSTEOPOROSIS"}, 0.75});
  }
  // Transplant-regimen cluster (graft-versus-host disease reports).
  for (const char* drug : {"METHOTREXATE", "PROGRAF"}) {
    specs.push_back(SingleDrugEffectSpec{
        drug, {"CHRONIC GRAFT VERSUS HOST DISEASE"}, 0.55});
  }
  // Xolair alone is reported with asthma events (Table 3.1's contextual
  // rules have non-zero single-drug confidence).
  specs.push_back(SingleDrugEffectSpec{"XOLAIR", {"ASTHMA"}, 0.4});
  return specs;
}

SyntheticGenerator::SyntheticGenerator(GeneratorConfig config)
    : config_(std::move(config)) {
  // Vocabulary: curated names first (they get the head of the Zipf), then
  // synthetic padding out to the configured cardinality.
  drugs_ = CuratedDrugNames();
  if (drugs_.size() < config_.n_drugs) {
    auto padding = SyntheticNames("DRUG", config_.n_drugs - drugs_.size());
    drugs_.insert(drugs_.end(), padding.begin(), padding.end());
  } else {
    drugs_.resize(config_.n_drugs);
  }
  adrs_ = CuratedAdrTerms();
  if (adrs_.size() < config_.n_adrs) {
    auto padding = SyntheticNames("REACTION", config_.n_adrs - adrs_.size());
    adrs_.insert(adrs_.end(), padding.begin(), padding.end());
  } else {
    adrs_.resize(config_.n_adrs);
  }
  if (config_.signals.empty()) {
    config_.signals = DefaultSignals(config_.n_reports);
  }
  if (config_.single_drug_effects.empty()) {
    config_.single_drug_effects = DefaultSingleDrugEffects(config_.n_reports);
  }
  ground_truth_.signals = config_.signals;
  ground_truth_.single_drug_effects = config_.single_drug_effects;
}

std::string SyntheticGenerator::Misspell(const std::string& name,
                                         maras::Rng* rng) const {
  if (name.size() < 4) return name;
  std::string out = name;
  size_t pos = 1 + rng->Uniform(out.size() - 2);
  switch (rng->Uniform(3)) {
    case 0:  // transpose adjacent characters
      std::swap(out[pos], out[pos - 1]);
      break;
    case 1:  // drop a character
      out.erase(out.begin() + static_cast<long>(pos));
      break;
    default:  // duplicate a character
      out.insert(out.begin() + static_cast<long>(pos), out[pos]);
      break;
  }
  return out;
}

std::string SyntheticGenerator::DirtyDrugName(const std::string& canonical,
                                              maras::Rng* rng) const {
  std::string name = canonical;
  if (rng->Bernoulli(config_.alias_rate)) {
    // Emit a brand/generic alias when the vocabulary has one for this drug.
    for (const DrugAlias& alias : CuratedDrugAliases()) {
      if (alias.canonical == canonical) {
        name = alias.alias;
        break;
      }
    }
  }
  if (rng->Bernoulli(config_.misspelling_rate)) {
    name = Misspell(name, rng);
  }
  if (rng->Bernoulli(config_.dose_decoration_rate)) {
    static constexpr const char* kDecorations[] = {
        " 10MG", " 50MG TABLET", " (UNKNOWN)", " CAPSULE", " 0.5ML INJECTION"};
    name += kDecorations[rng->Uniform(5)];
  }
  return name;
}

void SyntheticGenerator::FillBackgroundDrugs(
    size_t count, const maras::ZipfTable& zipf, maras::Rng* rng,
    std::vector<std::string>* drugs) const {
  std::unordered_set<size_t> chosen;
  for (size_t i = 0; i < count && chosen.size() < drugs_.size(); ++i) {
    size_t rank = zipf.Sample(rng);
    if (!chosen.insert(rank).second) continue;
    drugs->push_back(drugs_[rank]);
  }
}

void SyntheticGenerator::FinishReport(const std::vector<std::string>& drugs,
                                      const maras::ZipfTable& adr_zipf,
                                      maras::Rng* rng, Report* report) const {
  // Single-drug effects: each effect drug present in the report attaches
  // its ADRs with the configured probability, regardless of what else the
  // patient took — this is what makes combinations of two effect drugs
  // high-confidence yet non-exclusive.
  for (const SingleDrugEffectSpec& effect : config_.single_drug_effects) {
    bool present = false;
    for (const std::string& drug : drugs) present |= drug == effect.drug;
    if (present && rng->Bernoulli(effect.attach_prob)) {
      for (const std::string& adr : effect.adrs) {
        report->reactions.push_back(adr);
      }
    }
  }
  if (report->reactions.empty()) {
    FillBackgroundAdrs(1, adr_zipf, rng, report);
  }
  // De-duplicate reactions while preserving first-mention order.
  std::unordered_set<std::string> seen;
  std::vector<std::string> unique_reactions;
  for (std::string& adr : report->reactions) {
    if (seen.insert(adr).second) unique_reactions.push_back(std::move(adr));
  }
  report->reactions = std::move(unique_reactions);
  // Render verbatim (dirty) drug strings last, from canonical names.
  for (const std::string& drug : drugs) {
    report->drugs.push_back(DirtyDrugName(drug, rng));
  }
}

void SyntheticGenerator::FillBackgroundAdrs(size_t count,
                                            const maras::ZipfTable& zipf,
                                            maras::Rng* rng,
                                            Report* report) const {
  std::unordered_set<size_t> chosen;
  for (size_t i = 0; i < count && chosen.size() < adrs_.size(); ++i) {
    size_t rank = zipf.Sample(rng);
    if (!chosen.insert(rank).second) continue;
    report->reactions.push_back(adrs_[rank]);
  }
}

maras::StatusOr<QuarterDataset> SyntheticGenerator::Generate() const {
  if (config_.n_reports == 0) {
    return maras::Status::InvalidArgument("n_reports must be positive");
  }
  if (drugs_.empty() || adrs_.empty()) {
    return maras::Status::InvalidArgument("empty vocabulary");
  }
  // Quarter-specific stream: same seed, different quarter -> different data.
  maras::Rng rng(config_.seed * 1315423911ULL +
                 static_cast<uint64_t>(config_.year) * 4 +
                 static_cast<uint64_t>(config_.quarter));
  maras::ZipfTable drug_zipf(drugs_.size(), config_.drug_zipf_s);
  maras::ZipfTable adr_zipf(adrs_.size(), config_.adr_zipf_s);

  QuarterDataset dataset;
  dataset.year = config_.year;
  dataset.quarter = config_.quarter;
  uint64_t next_case_id =
      10000000ULL + static_cast<uint64_t>(config_.quarter) * 2000000ULL;

  auto new_report = [&](maras::Rng* r) {
    Report report;
    report.case_id = next_case_id++;
    report.case_version = 1;
    report.type = r->Bernoulli(config_.expedited_fraction)
                      ? ReportType::kExpedited
                      : ReportType::kPeriodic;
    report.sex = r->Bernoulli(0.55) ? Sex::kFemale : Sex::kMale;
    report.age = 18 + static_cast<double>(r->Uniform(75));
    report.country = kCountries[r->Uniform(10)];
    return report;
  };

  // 1. Background reports: independent Zipf draws — co-occurrence of any
  // specific drug pair is rare, so background contributes the denominator
  // (single-drug supports) without faking interactions. Single-drug-effect
  // ADRs attach inside FinishReport.
  std::vector<std::string> drugs;
  for (size_t i = 0; i < config_.n_reports; ++i) {
    Report report = new_report(&rng);
    drugs.clear();
    FillBackgroundDrugs(1 + static_cast<size_t>(rng.Poisson(
                                config_.mean_extra_drugs_per_report)),
                        drug_zipf, &rng, &drugs);
    FillBackgroundAdrs(static_cast<size_t>(rng.Poisson(
                           config_.mean_extra_adrs_per_report)),
                       adr_zipf, &rng, &report);
    FinishReport(drugs, adr_zipf, &rng, &report);
    dataset.reports.push_back(std::move(report));
  }

  // 2. Injected DDI signals.
  for (const SignalSpec& signal : config_.signals) {
    for (size_t i = 0; i < signal.reports; ++i) {
      Report report = new_report(&rng);
      drugs.clear();
      if (rng.Bernoulli(signal.single_drug_leak) && signal.drugs.size() > 1) {
        // Leakage report: a single drug of the combo with the same ADRs.
        drugs.push_back(signal.drugs[rng.Uniform(signal.drugs.size())]);
      } else {
        drugs = signal.drugs;
      }
      if (rng.Bernoulli(signal.adr_penetrance)) {
        for (const std::string& adr : signal.adrs) {
          report.reactions.push_back(adr);
        }
      } else {
        // The interaction did not manifest: background reactions only.
        FillBackgroundAdrs(1, adr_zipf, &rng, &report);
      }
      FillBackgroundDrugs(static_cast<size_t>(rng.Poisson(
                              signal.extra_drugs_mean)),
                          drug_zipf, &rng, &drugs);
      FillBackgroundAdrs(static_cast<size_t>(rng.Poisson(
                             signal.extra_adrs_mean)),
                         adr_zipf, &rng, &report);
      FinishReport(drugs, adr_zipf, &rng, &report);
      dataset.reports.push_back(std::move(report));
    }
  }

  // 3. Case versioning: resubmit a small share of cases as version 2 with a
  // slightly extended reaction list, exercising keep-latest-version dedup.
  size_t resubmissions = dataset.reports.size() / 50;
  std::unordered_set<uint64_t> resubmitted;
  const size_t original_count = dataset.reports.size();
  for (size_t i = 0; i < resubmissions; ++i) {
    const Report& original = dataset.reports[rng.Uniform(original_count)];
    // One revision per case, so primary ids stay unique.
    if (!resubmitted.insert(original.case_id).second) continue;
    Report revised = original;
    revised.case_version = original.case_version + 1;
    FillBackgroundAdrs(1, adr_zipf, &rng, &revised);
    dataset.reports.push_back(std::move(revised));
  }

  rng.Shuffle(&dataset.reports);
  return dataset;
}

}  // namespace maras::faers
