#ifndef MARAS_FAERS_PREPROCESS_H_
#define MARAS_FAERS_PREPROCESS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "faers/ingest.h"
#include "faers/report.h"
#include "mining/item_dictionary.h"
#include "mining/transaction_db.h"
#include "text/dictionary.h"
#include "text/normalizer.h"
#include "util/statusor.h"

namespace maras::faers {

// The paper's first mining step (Section 5.2): extract drugs and ADRs from
// FAERS reports, merge them per case, clean names (deduplication and
// misspelling correction), and hand the result to the miner.
struct PreprocessOptions {
  // Keep only expedited (EXP) reports — the serious-event subset the paper
  // selects in Section 5.1.
  bool expedited_only = true;
  // When a case was resubmitted, keep only its highest version.
  bool keep_latest_case_version = true;
  text::NormalizerOptions normalizer;
  // Maximum edit distance for dictionary-based misspelling correction;
  // 0 disables fuzzy matching.
  size_t max_edit_distance = 1;
  // Seed the spelling dictionary with the curated drug vocabulary and
  // brand->generic aliases.
  bool use_curated_vocabulary = true;
};

struct PreprocessStats {
  size_t reports_in = 0;
  size_t reports_kept = 0;         // after EXP filter + version dedup
  size_t dropped_not_expedited = 0;
  size_t dropped_stale_version = 0;
  size_t dropped_empty = 0;        // no drugs or no reactions after cleaning
  size_t distinct_drugs = 0;
  size_t distinct_adrs = 0;
  size_t drug_mentions = 0;
  size_t adr_mentions = 0;
  size_t fuzzy_corrections = 0;    // misspellings repaired
  size_t alias_resolutions = 0;    // brand names mapped to canonical
};

// Demographics retained per kept report, for stratified analyses
// (age/sex confounding control) and drill-down.
struct CaseDemographics {
  Sex sex = Sex::kUnknown;
  double age = -1.0;  // years; < 0 unreported
};

// The cleaned, mineable form of a quarter: the interned item vocabulary, one
// transaction per kept report, the report identity for drill-down
// (transaction i came from primary_ids[i]) and its demographics
// (demographics[i]).
struct PreprocessResult {
  mining::ItemDictionary items;
  mining::TransactionDatabase transactions;
  std::vector<uint64_t> primary_ids;
  std::vector<CaseDemographics> demographics;
  PreprocessStats stats;
};

class Preprocessor {
 public:
  explicit Preprocessor(PreprocessOptions options);

  // Processes one quarter into a transaction database.
  maras::StatusOr<PreprocessResult> Process(
      const QuarterDataset& dataset) const;

  // As above, but additionally records drop accounting into `report` (one
  // warning per drop category with a non-zero count), so a degraded
  // surveillance run can surface what the cleaning stage discarded.
  maras::StatusOr<PreprocessResult> Process(const QuarterDataset& dataset,
                                            IngestReport* report) const;

  // The spelling dictionary in use (exposed for tests).
  const text::Dictionary& drug_dictionary() const { return drug_dictionary_; }

 private:
  // Normalizes then resolves one drug name; updates stats.
  std::string CleanDrugName(const std::string& raw,
                            std::unordered_map<std::string, std::string>* cache,
                            PreprocessStats* stats) const;

  PreprocessOptions options_;
  text::Dictionary drug_dictionary_;
};

}  // namespace maras::faers

#endif  // MARAS_FAERS_PREPROCESS_H_
