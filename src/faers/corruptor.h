#ifndef MARAS_FAERS_CORRUPTOR_H_
#define MARAS_FAERS_CORRUPTOR_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "faers/ascii_format.h"
#include "util/statusor.h"

namespace maras::faers {

// ---------------------------------------------------------------------------
// Deterministic corruption-injection harness. Given a clean quarter written
// by WriteAsciiQuarter and a seed, injects parameterized faults that mimic
// the damage seen in real FAERS extracts. The same seed and fault mix always
// produce byte-identical corrupted files, so recovery tests are exactly
// reproducible.
//
// Accounting contract (what the recovery invariants in the tests rely on):
//   - every row fault damages a distinct report (no two faults share a
//     primaryid), and never the row's leading primaryid field, so the
//     resilient reader can attribute each rejected row to its root cause;
//   - each injected row fault therefore produces exactly one root-cause
//     quarantined row (IngestReport::FaultCount), with DRUG/REAC rows of a
//     rejected DEMO row classified as collateral, not as new faults;
//   - reports whose primaryid is NOT in `faulted_primary_ids` survive
//     permissive re-ingestion byte-identically.
// ---------------------------------------------------------------------------

enum class FaultKind {
  kTruncateRow,         // cut a data row mid-line (drops >= 1 delimiter)
  kEmbeddedDelimiter,   // insert a stray '$' inside a field
  kDropColumn,          // remove one non-leading field from a row
  kReorderColumns,      // swap rept_cod and occr_country within a DEMO row
  kDuplicatePrimaryId,  // append a copy of an existing DEMO row
  kOrphanDrugRow,       // append a DRUG row with an unknown primaryid
  kOrphanReacRow,       // append a REAC row with an unknown primaryid
  kGarbageNumeric,      // replace a DEMO caseid with non-numeric garbage
  kMissingFile,         // drop one of the three files entirely (dir mode)
};

const char* FaultKindName(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kTruncateRow;
  size_t count = 1;
};

struct CorruptorConfig {
  uint64_t seed = 1;
  std::vector<FaultSpec> faults;
};

// One applied fault — the ground truth the recovery tests assert against.
struct InjectedFault {
  FaultKind kind = FaultKind::kTruncateRow;
  std::string file;         // e.g. "DEMO14Q1.txt"; file prefix for kMissingFile
  size_t line = 0;          // 1-based line damaged/appended; 0 for kMissingFile
  uint64_t primary_id = 0;  // report whose data was damaged; 0 when none
  std::string detail;
};

struct CorruptionResult {
  AsciiQuarterFiles files;
  std::vector<InjectedFault> faults;
  // File prefixes ("DEMO"/"DRUG"/"REAC") removed by kMissingFile.
  std::vector<std::string> missing;
  // Reports whose own rows were damaged; everything else must survive
  // permissive re-ingestion untouched.
  std::set<uint64_t> faulted_primary_ids;

  // Row faults only (kMissingFile excluded) — the expected
  // IngestReport::FaultCount after re-ingesting `files`.
  size_t RowFaultCount() const;
};

// A mix exercising every row-level fault kind `per_kind` times (the
// kMissingFile fault is excluded; it only makes sense in directory mode).
std::vector<FaultSpec> AllRowFaults(size_t per_kind);

class Corruptor {
 public:
  explicit Corruptor(CorruptorConfig config) : config_(std::move(config)) {}

  // Applies the configured faults to a clean quarter. Fails with
  // InvalidArgument when the quarter has too few rows to host the requested
  // faults under the one-fault-per-report contract.
  maras::StatusOr<CorruptionResult> Corrupt(const AsciiQuarterFiles& clean,
                                            int year, int quarter) const;

  const CorruptorConfig& config() const { return config_; }

 private:
  CorruptorConfig config_;
};

// Writes the corrupted quarter into `directory` with FAERS naming, omitting
// (and deleting any stale copy of) every file listed in `result.missing`.
maras::Status WriteCorruptedQuarterToDir(const CorruptionResult& result,
                                         const std::string& directory,
                                         int year, int quarter);

// ---------------------------------------------------------------------------
// Torn-file primitives. A crash mid-write leaves a file cut at an arbitrary
// byte — inside a record, not at a tidy line boundary. These are shared by
// the ingestion robustness tests and the checkpoint crash harness (which
// tears snapshot files with TruncateFileAt to prove resume rejects them).
// Deliberately NOT FaultKinds: a torn tail can damage several trailing
// reports at once, which would break the Corruptor's one-fault-per-report
// accounting contract.
// ---------------------------------------------------------------------------

// Truncates the file at `path` to exactly `offset` bytes, simulating a torn
// write. `offset` must not exceed the current file size.
maras::Status TruncateFileAt(const std::string& path, size_t offset);

// A deterministically torn table: `content` cut at a seeded byte offset
// strictly inside a data row, so the surviving tail row is malformed.
struct TornFile {
  std::string content;              // the bytes that survive the tear
  size_t offset = 0;                // cut position within the original
  size_t first_lost_line = 0;       // 1-based line the cut lands in
  uint64_t damaged_primary_id = 0;  // leading primaryid of that line
};

// Picks a data row (never the header) and a cut point inside it from
// `seed`; same seed, same tear. Fails with InvalidArgument when `content`
// has no data row wide enough to cut mid-record.
maras::StatusOr<TornFile> TearFileMidRecord(const std::string& content,
                                            uint64_t seed);

}  // namespace maras::faers

#endif  // MARAS_FAERS_CORRUPTOR_H_
