#include "faers/openfda.h"

#include <cstdio>
#include <cstdlib>

#include "util/json.h"

namespace maras::faers {

namespace {

// openFDA represents nearly everything as strings; fetch one leniently.
std::string StringField(const json::Value& object, std::string_view key) {
  const json::Value* field = object.Find(key);
  if (field == nullptr) return "";
  if (field->is_string()) return field->as_string();
  if (field->is_number()) {
    double v = field->as_number();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  return "";
}

}  // namespace

maras::StatusOr<QuarterDataset> ReadOpenFdaEvents(
    const std::string& json_text, int year, int quarter,
    OpenFdaReadStats* stats) {
  MARAS_ASSIGN_OR_RETURN(json::Value document, json::Parse(json_text));
  const json::Value* results = document.Find("results");
  if (results == nullptr || !results->is_array()) {
    return maras::Status::Corruption("missing 'results' array");
  }
  OpenFdaReadStats local_stats;
  QuarterDataset dataset;
  dataset.year = year;
  dataset.quarter = quarter;

  for (const json::Value& result : results->as_array()) {
    ++local_stats.results_total;
    if (!result.is_object()) {
      ++local_stats.skipped_incomplete;
      continue;
    }
    Report report;
    std::string report_id = StringField(result, "safetyreportid");
    if (report_id.empty()) {
      ++local_stats.skipped_incomplete;
      continue;
    }
    report.case_id = std::strtoull(report_id.c_str(), nullptr, 10);
    std::string version = StringField(result, "safetyreportversion");
    report.case_version =
        version.empty()
            ? 1
            : static_cast<uint32_t>(std::strtoul(version.c_str(), nullptr, 10));
    report.type = StringField(result, "fulfillexpeditecriteria") == "1"
                      ? ReportType::kExpedited
                      : ReportType::kPeriodic;
    report.country = StringField(result, "occurcountry");

    const json::Value* patient = result.Find("patient");
    if (patient == nullptr || !patient->is_object()) {
      ++local_stats.skipped_incomplete;
      continue;
    }
    std::string sex = StringField(*patient, "patientsex");
    report.sex = sex == "1"   ? Sex::kMale
                 : sex == "2" ? Sex::kFemale
                              : Sex::kUnknown;
    std::string age = StringField(*patient, "patientonsetage");
    if (!age.empty()) report.age = std::strtod(age.c_str(), nullptr);

    const json::Value* drugs = patient->Find("drug");
    if (drugs != nullptr && drugs->is_array()) {
      for (const json::Value& drug : drugs->as_array()) {
        if (!drug.is_object()) continue;
        std::string name = StringField(drug, "medicinalproduct");
        if (!name.empty()) report.drugs.push_back(std::move(name));
      }
    }
    const json::Value* reactions = patient->Find("reaction");
    if (reactions != nullptr && reactions->is_array()) {
      for (const json::Value& reaction : reactions->as_array()) {
        if (!reaction.is_object()) continue;
        std::string pt = StringField(reaction, "reactionmeddrapt");
        if (!pt.empty()) report.reactions.push_back(std::move(pt));
      }
    }
    if (report.drugs.empty() || report.reactions.empty()) {
      ++local_stats.skipped_incomplete;
      continue;
    }
    ++local_stats.reports_loaded;
    dataset.reports.push_back(std::move(report));
  }
  if (stats != nullptr) *stats = local_stats;
  return dataset;
}

maras::StatusOr<std::string> WriteOpenFdaEvents(
    const QuarterDataset& dataset) {
  json::Value::Array results;
  for (const Report& report : dataset.reports) {
    json::Value::Object patient;
    if (report.sex != Sex::kUnknown) {
      patient["patientsex"] = report.sex == Sex::kMale ? "1" : "2";
    }
    if (report.age >= 0) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.0f", report.age);
      patient["patientonsetage"] = std::string(buf);
    }
    json::Value::Array drugs;
    for (const std::string& name : report.drugs) {
      drugs.push_back(
          json::Value::Object{{"medicinalproduct", json::Value(name)}});
    }
    patient["drug"] = std::move(drugs);
    json::Value::Array reactions;
    for (const std::string& pt : report.reactions) {
      reactions.push_back(
          json::Value::Object{{"reactionmeddrapt", json::Value(pt)}});
    }
    patient["reaction"] = std::move(reactions);

    json::Value::Object result;
    result["safetyreportid"] = std::to_string(report.case_id);
    result["safetyreportversion"] = std::to_string(report.case_version);
    result["fulfillexpeditecriteria"] =
        report.type == ReportType::kExpedited ? "1" : "2";
    if (!report.country.empty()) result["occurcountry"] = report.country;
    result["patient"] = std::move(patient);
    results.push_back(std::move(result));
  }
  json::Value document(
      json::Value::Object{{"results", json::Value(std::move(results))}});
  return json::Serialize(document, /*pretty=*/true);
}

}  // namespace maras::faers
