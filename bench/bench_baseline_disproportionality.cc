// Baseline comparison the paper's Related Work motivates: rank the same
// multi-drug clusters with the classic pharmacovigilance disproportionality
// statistics (PRR, ROR, BCPNN IC — Tatonetti et al. / DuMouchel style) and
// with MARAS exclusiveness, then measure (a) mean ground-truth signal rank
// and (b) how many single-drug-driven decoys pollute each method's top-20.
// The paper's claim: disproportionality finds *associations* but cannot
// separate interaction signals from single-drug effects; exclusiveness can.

#include <algorithm>
#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "core/disproportionality.h"

namespace {

using maras::core::RankedMcac;

// Scores every MCAC with `fn` and returns them sorted descending.
template <typename Fn>
std::vector<RankedMcac> RankBy(const std::vector<maras::core::Mcac>& mcacs,
                               Fn&& fn) {
  std::vector<RankedMcac> ranked;
  ranked.reserve(mcacs.size());
  for (const auto& mcac : mcacs) {
    ranked.push_back(RankedMcac{mcac, fn(mcac)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedMcac& a, const RankedMcac& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.mcac.target.drugs < b.mcac.target.drugs;
            });
  return ranked;
}

struct NamedItemset {
  std::string name;
  maras::mining::Itemset drugs;
  std::set<maras::mining::ItemId> adrs;
};

std::vector<NamedItemset> ResolveSignals(
    const maras::faers::GroundTruth& truth,
    const maras::mining::ItemDictionary& items) {
  std::vector<NamedItemset> resolved;
  for (const auto& signal : truth.signals) {
    NamedItemset entry;
    entry.name = signal.name;
    bool ok = true;
    for (const auto& name : signal.drugs) {
      auto id = items.Lookup(name);
      if (!id.ok()) {
        ok = false;
        break;
      }
      entry.drugs.push_back(*id);
    }
    for (const auto& name : signal.adrs) {
      auto id = items.Lookup(name);
      if (id.ok()) entry.adrs.insert(*id);
    }
    if (ok && !entry.adrs.empty()) {
      entry.drugs = maras::mining::MakeItemset(std::move(entry.drugs));
      resolved.push_back(std::move(entry));
    }
  }
  return resolved;
}

double MeanRank(const std::vector<RankedMcac>& ranked,
                const std::vector<NamedItemset>& signals) {
  double sum = 0.0;
  for (const auto& signal : signals) {
    size_t rank = ranked.size();
    for (size_t i = 0; i < ranked.size(); ++i) {
      if (!maras::mining::IsSubset(signal.drugs,
                                   ranked[i].mcac.target.drugs)) {
        continue;
      }
      bool hit = false;
      for (auto id : ranked[i].mcac.target.adrs) {
        hit |= signal.adrs.count(id) > 0;
      }
      if (hit) {
        rank = i;
        break;
      }
    }
    sum += static_cast<double>(rank + 1);
  }
  return signals.empty() ? 0.0 : sum / static_cast<double>(signals.size());
}

// Counts top-k entries dominated by a single drug: some context rule
// reaches >= 80% of the target's confidence (the decoys disproportionality
// cannot reject).
size_t DominatedInTopK(const std::vector<RankedMcac>& ranked, size_t k) {
  size_t dominated = 0;
  for (size_t i = 0; i < std::min(k, ranked.size()); ++i) {
    const auto& mcac = ranked[i].mcac;
    if (mcac.levels.empty() || mcac.levels[0].empty()) continue;
    double best_single = 0.0;
    for (const auto& rule : mcac.levels[0]) {
      best_single = std::max(best_single, rule.confidence);
    }
    if (best_single >= 0.8 * mcac.target.confidence) ++dominated;
  }
  return dominated;
}

}  // namespace

int main() {
  using namespace maras;
  const double scale = bench::ScaleFromEnv();
  bench::PrintHeader(
      "Baseline — disproportionality statistics vs MARAS exclusiveness");
  bench::PreparedQuarter prepared = bench::PrepareQuarter(4, scale);
  core::MarasAnalyzer analyzer(bench::DefaultAnalyzerOptions(scale));
  auto analysis = analyzer.Analyze(prepared.pre);
  MARAS_CHECK(analysis.ok()) << analysis.status().ToString();
  const auto& db = prepared.pre.transactions;
  auto signals = ResolveSignals(prepared.ground_truth, prepared.pre.items);
  std::printf("clusters: %zu, resolvable ground-truth signals: %zu\n\n",
              analysis->mcacs.size(), signals.size());

  core::ExclusivenessOptions scoring;
  scoring.theta = 0.5;

  struct Method {
    const char* name;
    std::vector<RankedMcac> ranked;
  };
  std::vector<Method> methods;
  methods.push_back({"PRR", RankBy(analysis->mcacs, [&](const core::Mcac& m) {
                       return core::EvaluateDisproportionality(db, m.target)
                           .prr;
                     })});
  methods.push_back({"ROR", RankBy(analysis->mcacs, [&](const core::Mcac& m) {
                       return core::EvaluateDisproportionality(db, m.target)
                           .ror;
                     })});
  methods.push_back({"BCPNN IC",
                     RankBy(analysis->mcacs, [&](const core::Mcac& m) {
                       return core::EvaluateDisproportionality(db, m.target)
                           .information_component;
                     })});
  methods.push_back(
      {"exclusiveness", RankBy(analysis->mcacs, [&](const core::Mcac& m) {
         return core::Exclusiveness(m, scoring);
       })});

  std::printf("%-15s | %-18s | %s\n", "method", "mean signal rank",
              "single-drug-dominated in top-20");
  std::printf("----------------+--------------------+-------------------------------\n");
  double excl_rank = 0, best_baseline_rank = 1e18;
  size_t excl_dominated = 0, min_baseline_dominated = SIZE_MAX;
  for (const auto& method : methods) {
    double mean_rank = MeanRank(method.ranked, signals);
    size_t dominated = DominatedInTopK(method.ranked, 20);
    std::printf("%-15s | %18.1f | %zu/20\n", method.name, mean_rank,
                dominated);
    if (std::string(method.name) == "exclusiveness") {
      excl_rank = mean_rank;
      excl_dominated = dominated;
    } else {
      best_baseline_rank = std::min(best_baseline_rank, mean_rank);
      min_baseline_dominated = std::min(min_baseline_dominated, dominated);
    }
  }

  // Evans signal criterion coverage: how many clusters would classic PRR
  // surveillance flag at all?
  size_t evans = 0;
  for (const auto& mcac : analysis->mcacs) {
    if (core::EvaluateDisproportionality(db, mcac.target)
            .MeetsEvansCriteria()) {
      ++evans;
    }
  }
  std::printf("\nEvans criterion (PRR>=2, chi2>=4, a>=3) flags %zu/%zu "
              "clusters — it measures association, not interaction.\n",
              evans, analysis->mcacs.size());

  bool ok = excl_dominated <= min_baseline_dominated;
  std::printf("\nPaper claim (exclusiveness top-20 carries no more "
              "single-drug-dominated decoys than any baseline): %s\n",
              ok ? "REPRODUCED" : "NOT reproduced");
  std::printf("(mean ranks: exclusiveness %.1f vs best baseline %.1f)\n",
              excl_rank, best_baseline_rank);
  return ok ? 0 : 1;
}
