// Micro-benchmarks for the resilient ingestion layer: the cost of the
// policy-aware ASCII reader on clean data (strict vs quarantine), recovery
// from a corrupted quarter, and the corruption harness itself. Strict-mode
// parsing of clean data is the hot path — the lenient policies must not tax
// it.

#include <benchmark/benchmark.h>

#include "faers/ascii_format.h"
#include "faers/corruptor.h"
#include "faers/generator.h"

namespace {

using namespace maras;

faers::AsciiQuarterFiles CleanQuarter(size_t reports) {
  faers::GeneratorConfig config;
  config.seed = 20140101;
  config.n_reports = reports;
  config.n_drugs = 1000;
  config.n_adrs = 400;
  faers::SyntheticGenerator generator(config);
  auto dataset = generator.Generate();
  auto files = faers::WriteAsciiQuarter(*dataset);
  return *files;
}

faers::IngestOptions PolicyOptions(faers::IngestPolicy policy) {
  faers::IngestOptions options;
  options.policy = policy;
  options.max_bad_row_fraction = 0.5;
  return options;
}

void BM_IngestCleanStrict(benchmark::State& state) {
  faers::AsciiQuarterFiles files =
      CleanQuarter(static_cast<size_t>(state.range(0)));
  size_t reports = 0;
  for (auto _ : state) {
    auto parsed = faers::ReadAsciiQuarter(files, 2014, 1);
    benchmark::DoNotOptimize(reports = parsed->reports.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(reports));
}
BENCHMARK(BM_IngestCleanStrict)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_IngestCleanQuarantine(benchmark::State& state) {
  faers::AsciiQuarterFiles files =
      CleanQuarter(static_cast<size_t>(state.range(0)));
  faers::IngestOptions options =
      PolicyOptions(faers::IngestPolicy::kQuarantine);
  size_t reports = 0;
  for (auto _ : state) {
    faers::IngestReport report;
    auto parsed = faers::ReadAsciiQuarter(files, 2014, 1, options, &report);
    benchmark::DoNotOptimize(reports = parsed->reports.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(reports));
}
BENCHMARK(BM_IngestCleanQuarantine)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_IngestCorruptedQuarantine(benchmark::State& state) {
  faers::AsciiQuarterFiles clean =
      CleanQuarter(static_cast<size_t>(state.range(0)));
  faers::CorruptorConfig config;
  config.seed = 7;
  config.faults = faers::AllRowFaults(8);
  auto corrupted = faers::Corruptor(config).Corrupt(clean, 2014, 1);
  faers::IngestOptions options =
      PolicyOptions(faers::IngestPolicy::kQuarantine);
  size_t rejected = 0;
  for (auto _ : state) {
    faers::IngestReport report;
    auto parsed =
        faers::ReadAsciiQuarter(corrupted->files, 2014, 1, options, &report);
    benchmark::DoNotOptimize(parsed->reports.size());
    rejected = report.rows_rejected;
  }
  state.counters["rows_rejected"] = static_cast<double>(rejected);
}
BENCHMARK(BM_IngestCorruptedQuarantine)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_CorruptQuarter(benchmark::State& state) {
  faers::AsciiQuarterFiles clean = CleanQuarter(4000);
  faers::CorruptorConfig config;
  config.seed = 7;
  config.faults = faers::AllRowFaults(static_cast<size_t>(state.range(0)));
  faers::Corruptor corruptor(config);
  for (auto _ : state) {
    auto corrupted = corruptor.Corrupt(clean, 2014, 1);
    benchmark::DoNotOptimize(corrupted->faults.size());
  }
}
BENCHMARK(BM_CorruptQuarter)->Arg(4)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
