// Regenerates the visualization artifacts: Fig. 4.1 (contextual glyph),
// Fig. 4.2 (panoramagram of glyphs), Fig. 4.3 (zoom-in glyph view) and
// Fig. 5.3 (the MCAC bar-chart baseline), as SVG files rendered from the
// top-ranked clusters mined out of the synthetic Q1 corpus.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/diversify.h"
#include "viz/barchart.h"
#include "viz/glyph.h"
#include "viz/panorama.h"

int main() {
  using namespace maras;
  const double scale = bench::ScaleFromEnv();
  bench::PrintHeader(
      "Figs. 4.1/4.2/4.3/5.3 — render MARAS views for top clusters");
  bench::PreparedQuarter prepared = bench::PrepareQuarter(1, scale);
  core::MarasAnalyzer analyzer(bench::DefaultAnalyzerOptions(scale));
  auto analysis = analyzer.Analyze(prepared.pre);
  MARAS_CHECK(analysis.ok()) << analysis.status().ToString();
  core::ExclusivenessOptions scoring;
  auto ranked = core::RankMcacs(
      analysis->mcacs, core::RankingMethod::kExclusivenessConfidence, scoring);
  MARAS_CHECK(!ranked.empty()) << "no clusters mined";

  viz::ContextualGlyphRenderer glyph_renderer;
  viz::BarChartRenderer bar_renderer;

  auto emit = [](const viz::SvgDocument& doc, const char* path) {
    auto status = doc.WriteFile(path);
    std::printf("  %-28s %s (%zu bytes)\n", path,
                status.ok() ? "written" : status.ToString().c_str(),
                doc.Render().size());
  };

  // Fig. 4.1: the top cluster as a contextual glyph.
  viz::GlyphSpec top = viz::GlyphSpecFromMcac(ranked[0].mcac,
                                              prepared.pre.items);
  emit(glyph_renderer.Render(top), "fig_4_1_contextual_glyph.svg");

  // Fig. 4.3: zoom-in view with per-sector labels.
  emit(glyph_renderer.RenderZoom(top), "fig_4_3_zoom_glyph.svg");

  // Fig. 5.3: the same cluster as the baseline bar chart.
  emit(bar_renderer.Render(top), "fig_5_3_mcac_barchart.svg");

  // Fig. 4.2: panoramagram of 20 clusters, diversified so the first screen
  // is not one drug family's ADR-subset variants (MMR, lambda = 0.6).
  core::DiversifyOptions diversify;
  diversify.k = 20;
  diversify.lambda = 0.6;
  std::vector<viz::PanoramaEntry> entries;
  for (const core::RankedMcac& pick :
       core::DiversifiedTopK(ranked, diversify)) {
    viz::PanoramaEntry entry;
    entry.spec = viz::GlyphSpecFromMcac(pick.mcac, prepared.pre.items);
    entry.spec.title.clear();  // captions carry rank + score instead
    entry.score = pick.score;
    entries.push_back(std::move(entry));
  }
  viz::PanoramaRenderer panorama;
  emit(panorama.Render(entries, "MARAS panoramagram — 2014 Q1 top clusters"),
       "fig_4_2_panoramagram.svg");

  std::printf("\ntop cluster: %s\n",
              core::RuleToString(ranked[0].mcac.target,
                                 prepared.pre.items)
                  .c_str());
  return 0;
}
