// Counting replacements for the global allocation functions. Kept
// deliberately simple: every variant funnels through one counted malloc and
// one plain free, so sized/aligned/nothrow deletes all pair correctly.
// Linked only into the microbench binaries (see bench/CMakeLists.txt).

#include "bench/alloc_counter.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_bytes{0};

void* CountedAlloc(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (align > alignof(std::max_align_t)) {
    void* ptr = nullptr;
    // posix_memalign-allocated memory is released with plain free().
    if (posix_memalign(&ptr, align, size) != 0) return nullptr;
    return ptr;
  }
  return std::malloc(size);
}

}  // namespace

namespace maras::bench {

AllocCounts CurrentAllocCounts() {
  return AllocCounts{g_allocs.load(std::memory_order_relaxed),
                     g_bytes.load(std::memory_order_relaxed)};
}

}  // namespace maras::bench

void* operator new(std::size_t size) {
  void* ptr = CountedAlloc(size, 0);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size, 0);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size, 0);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* ptr = CountedAlloc(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(ptr);
}
