// Stratified / disproportionality statistics bench, two personalities:
//
//   * default: google-benchmark micro-benchmarks of the batched SoA
//     contingency path (MakeContingencyTables / EvaluateDisproportionality
//     Batch) against the one-rule scalar loop, and of the bitmap-kernel
//     stratum tables against the scalar merge reference — written to
//     BENCH_stratified.json (wall-clock, allocs/iteration, peak RSS) for
//     the committed baseline in bench/baselines/.
//   * --shape: the original harness — for every mined cluster, contrast
//     the crude reporting odds ratio with the sex/age Mantel–Haenszel
//     pooled estimate and check every injected ground-truth signal
//     survives stratification (DESIGN.md experiment B2).
//
// `--smoke` runs the batch paths on a small fixture and fails unless every
// lane matches the scalar path exactly — cells and derived doubles both.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/alloc_counter.h"
#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/stratified.h"
#include "util/random.h"
#include "util/string_util.h"

namespace {

using namespace maras;

// Synthetic screening workload: a Zipf-skewed report database with
// per-report demographics, plus a rule panel over the frequent items.
struct StratWorkload {
  mining::TransactionDatabase db;
  std::vector<faers::CaseDemographics> demographics;
  std::vector<core::DrugAdrRule> rules;
};

StratWorkload MakeWorkload(size_t reports, size_t items, size_t rule_count,
                           uint64_t seed) {
  Rng rng(seed);
  ZipfTable zipf(items, 1.05);
  StratWorkload w;
  for (size_t t = 0; t < reports; ++t) {
    mining::Itemset txn;
    size_t len = 2 + static_cast<size_t>(rng.Poisson(4.0));
    for (size_t i = 0; i < len; ++i) {
      txn.push_back(static_cast<mining::ItemId>(zipf.Sample(&rng)));
    }
    w.db.Add(std::move(txn));
    faers::CaseDemographics demo;
    demo.sex = static_cast<faers::Sex>(rng.Uniform(3));
    demo.age = rng.Bernoulli(0.1) ? -1.0 : static_cast<double>(rng.Uniform(95));
    w.demographics.push_back(demo);
  }
  for (size_t r = 0; r < rule_count; ++r) {
    core::DrugAdrRule rule;
    mining::Itemset drugs;
    for (size_t i = 1 + rng.Uniform(2); i > 0; --i) {
      drugs.push_back(static_cast<mining::ItemId>(zipf.Sample(&rng)));
    }
    rule.drugs = mining::MakeItemset(std::move(drugs));
    rule.adrs = mining::MakeItemset(
        {static_cast<mining::ItemId>(zipf.Sample(&rng))});
    w.rules.push_back(std::move(rule));
  }
  return w;
}

void BM_DisproportionalityScalarLoop(benchmark::State& state) {
  StratWorkload w = MakeWorkload(static_cast<size_t>(state.range(0)), 150,
                                 static_cast<size_t>(state.range(1)), 7);
  size_t signals = 0;
  const auto alloc0 = bench::CurrentAllocCounts();
  for (auto _ : state) {
    size_t n = 0;
    for (const core::DrugAdrRule& rule : w.rules) {
      if (core::EvaluateDisproportionality(w.db, rule).MeetsEvansCriteria()) {
        ++n;
      }
    }
    benchmark::DoNotOptimize(signals = n);
  }
  bench::SetAllocCounters(state, alloc0);
  state.counters["evans_signals"] = static_cast<double>(signals);
}
BENCHMARK(BM_DisproportionalityScalarLoop)
    ->Args({4000, 256})
    ->Args({16000, 256})
    ->Unit(benchmark::kMillisecond);

void BM_DisproportionalityBatch(benchmark::State& state) {
  StratWorkload w = MakeWorkload(static_cast<size_t>(state.range(0)), 150,
                                 static_cast<size_t>(state.range(1)), 7);
  const size_t threads = static_cast<size_t>(state.range(2));
  size_t signals = 0;
  const auto alloc0 = bench::CurrentAllocCounts();
  for (auto _ : state) {
    std::vector<core::DisproportionalityResult> results =
        core::EvaluateDisproportionalityBatch(w.db, w.rules, threads);
    size_t n = 0;
    for (const core::DisproportionalityResult& r : results) {
      if (r.MeetsEvansCriteria()) ++n;
    }
    benchmark::DoNotOptimize(signals = n);
  }
  bench::SetAllocCounters(state, alloc0);
  state.counters["evans_signals"] = static_cast<double>(signals);
}
BENCHMARK(BM_DisproportionalityBatch)
    ->Args({4000, 256, 1})
    ->Args({16000, 256, 1})
    ->Args({16000, 256, 4})
    ->Unit(benchmark::kMillisecond);

void BM_StratifiedTablesScalar(benchmark::State& state) {
  StratWorkload w = MakeWorkload(static_cast<size_t>(state.range(0)), 150,
                                 128, 7);
  core::StratifiedAnalyzer analyzer(&w.db, &w.demographics);
  size_t cells = 0;
  const auto alloc0 = bench::CurrentAllocCounts();
  for (auto _ : state) {
    size_t n = 0;
    for (const core::DrugAdrRule& rule : w.rules) {
      n += analyzer.TablesScalar(rule).size();
    }
    benchmark::DoNotOptimize(cells = n);
  }
  bench::SetAllocCounters(state, alloc0);
  state.counters["strata"] = static_cast<double>(cells);
}
BENCHMARK(BM_StratifiedTablesScalar)
    ->Arg(4000)
    ->Arg(16000)
    ->Unit(benchmark::kMillisecond);

void BM_StratifiedTablesBitmap(benchmark::State& state) {
  StratWorkload w = MakeWorkload(static_cast<size_t>(state.range(0)), 150,
                                 128, 7);
  core::StratifiedAnalyzer analyzer(&w.db, &w.demographics);
  size_t cells = 0;
  const auto alloc0 = bench::CurrentAllocCounts();
  for (auto _ : state) {
    size_t n = 0;
    for (const core::DrugAdrRule& rule : w.rules) {
      n += analyzer.Tables(rule).size();
    }
    benchmark::DoNotOptimize(cells = n);
  }
  bench::SetAllocCounters(state, alloc0);
  state.counters["strata"] = static_cast<double>(cells);
}
BENCHMARK(BM_StratifiedTablesBitmap)
    ->Arg(4000)
    ->Arg(16000)
    ->Unit(benchmark::kMillisecond);

void BM_MantelHaenszelBatch(benchmark::State& state) {
  StratWorkload w = MakeWorkload(8000, 150, 128, 7);
  core::StratifiedAnalyzer analyzer(&w.db, &w.demographics);
  const size_t threads = static_cast<size_t>(state.range(0));
  double sum = 0;
  const auto alloc0 = bench::CurrentAllocCounts();
  for (auto _ : state) {
    std::vector<double> rors = analyzer.MantelHaenszelRors(w.rules, threads);
    double s = 0;
    for (double r : rors) s += r;
    benchmark::DoNotOptimize(sum = s);
  }
  bench::SetAllocCounters(state, alloc0);
}
BENCHMARK(BM_MantelHaenszelBatch)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Batch-vs-scalar identity on a small fixture: cells and derived doubles
// must match exactly (the batch derives cells from the popcount kernels,
// then runs the same measure functions — any divergence is a kernel bug).
bool RunSmoke() {
  StratWorkload w = MakeWorkload(1500, 80, 96, 13);
  bool ok = true;
  for (size_t threads : {1u, 4u}) {
    std::vector<core::DisproportionalityResult> batch =
        core::EvaluateDisproportionalityBatch(w.db, w.rules, threads);
    for (size_t i = 0; i < w.rules.size(); ++i) {
      core::DisproportionalityResult scalar =
          core::EvaluateDisproportionality(w.db, w.rules[i]);
      if (std::memcmp(&batch[i].table, &scalar.table, sizeof(scalar.table)) !=
              0 ||
          batch[i].prr != scalar.prr || batch[i].ror != scalar.ror ||
          batch[i].chi_squared != scalar.chi_squared ||
          batch[i].information_component != scalar.information_component) {
        std::fprintf(stderr, "smoke: batch lane %zu != scalar (%zu threads)\n",
                     i, threads);
        ok = false;
      }
    }
  }
  core::StratifiedAnalyzer analyzer(&w.db, &w.demographics);
  std::vector<double> pooled1 = analyzer.MantelHaenszelRors(w.rules, 1);
  for (size_t i = 0; i < w.rules.size(); ++i) {
    auto bitmap_tables = analyzer.Tables(w.rules[i]);
    auto scalar_tables = analyzer.TablesScalar(w.rules[i]);
    if (bitmap_tables.size() != scalar_tables.size()) {
      std::fprintf(stderr, "smoke: stratum count mismatch, rule %zu\n", i);
      ok = false;
      continue;
    }
    for (size_t s = 0; s < bitmap_tables.size(); ++s) {
      if (std::memcmp(&bitmap_tables[s].table, &scalar_tables[s].table,
                      sizeof(core::ContingencyTable)) != 0) {
        std::fprintf(stderr, "smoke: stratum cells mismatch, rule %zu\n", i);
        ok = false;
      }
    }
  }
  if (analyzer.MantelHaenszelRors(w.rules, 4) != pooled1) {
    std::fprintf(stderr, "smoke: MH pooling not thread-invariant\n");
    ok = false;
  }
  std::printf("smoke: %zu rules, batch==scalar %s\n", w.rules.size(),
              ok ? "OK" : "MISMATCH");
  return ok;
}

// The original stratified shape harness (DESIGN.md experiment B2).
int RunShape() {
  const double scale = bench::ScaleFromEnv();
  bench::PrintHeader(
      "Stratified analysis — crude vs Mantel-Haenszel (sex × age band)");
  bench::PreparedQuarter prepared = bench::PrepareQuarter(1, scale);
  core::MarasAnalyzer analyzer(bench::DefaultAnalyzerOptions(scale));
  auto analysis = analyzer.Analyze(prepared.pre);
  MARAS_CHECK(analysis.ok()) << analysis.status().ToString();

  core::StratifiedAnalyzer stratified(&prepared.pre.transactions,
                                      &prepared.pre.demographics);
  auto ranked = core::RankMcacs(
      analysis->mcacs, core::RankingMethod::kExclusivenessConfidence, {});

  std::printf("top-10 clusters, crude vs pooled odds ratio:\n");
  std::printf("%-58s %10s %10s %s\n", "cluster", "crude OR", "MH OR",
              "confounded?");
  for (size_t i = 0; i < std::min<size_t>(10, ranked.size()); ++i) {
    const auto& target = ranked[i].mcac.target;
    double crude = stratified.CrudeRor(target);
    double pooled = stratified.MantelHaenszelRor(target);
    auto fmt = [](double v) {
      return v >= core::kDisproportionalityCap
                 ? std::string("inf")
                 : maras::FormatDouble(v, 2);
    };
    std::printf("%-58s %10s %10s %s\n",
                core::RuleToString(target, prepared.pre.items)
                    .substr(0, 57)
                    .c_str(),
                fmt(crude).c_str(), fmt(pooled).c_str(),
                stratified.IsConfounded(target) ? "YES" : "no");
  }

  size_t confounded = 0;
  for (const auto& entry : ranked) {
    if (stratified.IsConfounded(entry.mcac.target)) ++confounded;
  }
  std::printf("\n%zu/%zu clusters shift by >20%% once stratified "
              "(demographic confounding candidates)\n",
              confounded, ranked.size());

  // Sanity claim: the generator assigns demographics independently of drug
  // exposure, so true injected signals must survive stratification —
  // their pooled OR stays elevated.
  size_t checked = 0, surviving = 0;
  for (const auto& signal : prepared.ground_truth.signals) {
    mining::Itemset drugs;
    bool ok = true;
    for (const auto& name : signal.drugs) {
      auto id = prepared.pre.items.Lookup(name);
      if (!id.ok()) {
        ok = false;
        break;
      }
      drugs.push_back(*id);
    }
    mining::Itemset adrs;
    for (const auto& name : signal.adrs) {
      auto id = prepared.pre.items.Lookup(name);
      if (id.ok()) adrs.push_back(*id);
    }
    if (!ok || adrs.empty()) continue;
    core::DrugAdrRule rule;
    rule.drugs = mining::MakeItemset(std::move(drugs));
    rule.adrs = mining::MakeItemset(std::move(adrs));
    ++checked;
    if (stratified.MantelHaenszelRor(rule) > 2.0) ++surviving;
  }
  std::printf("ground-truth signals with pooled OR > 2: %zu/%zu\n",
              surviving, checked);
  bool shape = checked > 0 && surviving == checked;
  std::printf("Shape (every true signal survives stratification): %s\n",
              shape ? "REPRODUCED" : "NOT reproduced");
  return shape ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shape") == 0) return RunShape();
  }
  maras::bench::BenchMainOptions options =
      maras::bench::ParseBenchArgs(argc, argv, "BENCH_stratified.json");
  if (options.smoke) return RunSmoke() ? 0 : 1;
  return maras::bench::RunBenchmarksToJson(std::move(options),
                                           "bench_stratified");
}
