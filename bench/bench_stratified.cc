// Stratified-analysis harness: for every mined cluster, contrast the crude
// reporting odds ratio with the sex/age Mantel–Haenszel pooled estimate and
// count how many apparent signals are demographic confounding artifacts —
// the quality-control pass a FAERS evaluator runs before escalating.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/stratified.h"
#include "util/string_util.h"

int main() {
  using namespace maras;
  const double scale = bench::ScaleFromEnv();
  bench::PrintHeader(
      "Stratified analysis — crude vs Mantel-Haenszel (sex × age band)");
  bench::PreparedQuarter prepared = bench::PrepareQuarter(1, scale);
  core::MarasAnalyzer analyzer(bench::DefaultAnalyzerOptions(scale));
  auto analysis = analyzer.Analyze(prepared.pre);
  MARAS_CHECK(analysis.ok()) << analysis.status().ToString();

  core::StratifiedAnalyzer stratified(&prepared.pre.transactions,
                                      &prepared.pre.demographics);
  auto ranked = core::RankMcacs(
      analysis->mcacs, core::RankingMethod::kExclusivenessConfidence, {});

  std::printf("top-10 clusters, crude vs pooled odds ratio:\n");
  std::printf("%-58s %10s %10s %s\n", "cluster", "crude OR", "MH OR",
              "confounded?");
  for (size_t i = 0; i < std::min<size_t>(10, ranked.size()); ++i) {
    const auto& target = ranked[i].mcac.target;
    double crude = stratified.CrudeRor(target);
    double pooled = stratified.MantelHaenszelRor(target);
    auto fmt = [](double v) {
      return v >= core::kDisproportionalityCap
                 ? std::string("inf")
                 : maras::FormatDouble(v, 2);
    };
    std::printf("%-58s %10s %10s %s\n",
                core::RuleToString(target, prepared.pre.items)
                    .substr(0, 57)
                    .c_str(),
                fmt(crude).c_str(), fmt(pooled).c_str(),
                stratified.IsConfounded(target) ? "YES" : "no");
  }

  size_t confounded = 0;
  for (const auto& entry : ranked) {
    if (stratified.IsConfounded(entry.mcac.target)) ++confounded;
  }
  std::printf("\n%zu/%zu clusters shift by >20%% once stratified "
              "(demographic confounding candidates)\n",
              confounded, ranked.size());

  // Sanity claim: the generator assigns demographics independently of drug
  // exposure, so true injected signals must survive stratification —
  // their pooled OR stays elevated.
  size_t checked = 0, surviving = 0;
  for (const auto& signal : prepared.ground_truth.signals) {
    mining::Itemset drugs;
    bool ok = true;
    for (const auto& name : signal.drugs) {
      auto id = prepared.pre.items.Lookup(name);
      if (!id.ok()) {
        ok = false;
        break;
      }
      drugs.push_back(*id);
    }
    mining::Itemset adrs;
    for (const auto& name : signal.adrs) {
      auto id = prepared.pre.items.Lookup(name);
      if (id.ok()) adrs.push_back(*id);
    }
    if (!ok || adrs.empty()) continue;
    core::DrugAdrRule rule;
    rule.drugs = mining::MakeItemset(std::move(drugs));
    rule.adrs = mining::MakeItemset(std::move(adrs));
    ++checked;
    if (stratified.MantelHaenszelRor(rule) > 2.0) ++surviving;
  }
  std::printf("ground-truth signals with pooled OR > 2: %zu/%zu\n",
              surviving, checked);
  bool shape = checked > 0 && surviving == checked;
  std::printf("Shape (every true signal survives stratification): %s\n",
              shape ? "REPRODUCED" : "NOT reproduced");
  return shape ? 0 : 1;
}
