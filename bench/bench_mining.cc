// Micro-benchmarks for the mining substrate: Apriori vs. FP-Growth across
// database sizes and support thresholds (the paper's Section 5.2 picks
// FP-Growth for exactly this reason), closed-itemset filtering cost, and
// tid-list support counting. Every run lands in BENCH_mining.json
// (wall-clock, allocations per iteration, peak RSS) so the perf trajectory
// is diffable across PRs; `--smoke` runs a tiny fixture and fails on any
// result-hash disagreement between the miners (the bench-smoke ctest gate).

#include <benchmark/benchmark.h>

#include "bench/alloc_counter.h"
#include "bench/bench_json.h"
#include "mining/apriori.h"
#include "mining/closed_itemsets.h"
#include "mining/eclat.h"
#include "mining/maximal_itemsets.h"
#include "mining/fpgrowth.h"
#include "util/random.h"

namespace {

using namespace maras;
using namespace maras::mining;

// Market-basket-style database with a Zipfian item skew, matching the
// FAERS transaction shape (few very common drugs, long tail).
TransactionDatabase MakeDb(size_t transactions, size_t items,
                           double mean_len, uint64_t seed) {
  Rng rng(seed);
  ZipfTable zipf(items, 1.05);
  TransactionDatabase db;
  for (size_t t = 0; t < transactions; ++t) {
    Itemset txn;
    size_t len = 1 + static_cast<size_t>(rng.Poisson(mean_len));
    for (size_t i = 0; i < len; ++i) {
      txn.push_back(static_cast<ItemId>(zipf.Sample(&rng)));
    }
    db.Add(std::move(txn));
  }
  return db;
}

void BM_Apriori(benchmark::State& state) {
  TransactionDatabase db =
      MakeDb(static_cast<size_t>(state.range(0)), 400, 4.0, 7);
  MiningOptions options{.min_support = static_cast<size_t>(state.range(1)),
                        .max_itemset_size = 6};
  Apriori miner(options);
  size_t found = 0;
  const auto alloc0 = bench::CurrentAllocCounts();
  for (auto _ : state) {
    auto result = miner.Mine(db);
    benchmark::DoNotOptimize(found = result->size());
  }
  bench::SetAllocCounters(state, alloc0);
  state.counters["itemsets"] = static_cast<double>(found);
}
BENCHMARK(BM_Apriori)
    ->Args({1000, 5})
    ->Args({4000, 5})
    ->Args({4000, 20})
    ->Unit(benchmark::kMillisecond);

void BM_FpGrowth(benchmark::State& state) {
  TransactionDatabase db =
      MakeDb(static_cast<size_t>(state.range(0)), 400, 4.0, 7);
  MiningOptions options{.min_support = static_cast<size_t>(state.range(1)),
                        .max_itemset_size = 6};
  FpGrowth miner(options);
  size_t found = 0;
  const auto alloc0 = bench::CurrentAllocCounts();
  for (auto _ : state) {
    auto result = miner.Mine(db);
    benchmark::DoNotOptimize(found = result->size());
  }
  bench::SetAllocCounters(state, alloc0);
  state.counters["itemsets"] = static_cast<double>(found);
}
BENCHMARK(BM_FpGrowth)
    ->Args({1000, 5})
    ->Args({4000, 5})
    ->Args({4000, 20})
    ->Args({16000, 20})
    ->Unit(benchmark::kMillisecond);

void BM_Eclat(benchmark::State& state) {
  TransactionDatabase db =
      MakeDb(static_cast<size_t>(state.range(0)), 400, 4.0, 7);
  MiningOptions options{.min_support = static_cast<size_t>(state.range(1)),
                        .max_itemset_size = 6};
  Eclat miner(options);
  size_t found = 0;
  const auto alloc0 = bench::CurrentAllocCounts();
  for (auto _ : state) {
    auto result = miner.Mine(db);
    benchmark::DoNotOptimize(found = result->size());
  }
  bench::SetAllocCounters(state, alloc0);
  state.counters["itemsets"] = static_cast<double>(found);
}
BENCHMARK(BM_Eclat)
    ->Args({1000, 5})
    ->Args({4000, 5})
    ->Args({4000, 20})
    ->Args({16000, 20})
    ->Unit(benchmark::kMillisecond);

void BM_ClosedFilter(benchmark::State& state) {
  TransactionDatabase db =
      MakeDb(static_cast<size_t>(state.range(0)), 400, 4.0, 7);
  MiningOptions options{.min_support = 5, .max_itemset_size = 6};
  auto all = FpGrowth(options).Mine(db);
  size_t closed_count = 0;
  const auto alloc0 = bench::CurrentAllocCounts();
  for (auto _ : state) {
    FrequentItemsetResult closed = FilterClosed(*all);
    benchmark::DoNotOptimize(closed_count = closed.size());
  }
  bench::SetAllocCounters(state, alloc0);
  state.counters["frequent"] = static_cast<double>(all->size());
  state.counters["closed"] = static_cast<double>(closed_count);
}
BENCHMARK(BM_ClosedFilter)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_MaximalFilter(benchmark::State& state) {
  TransactionDatabase db =
      MakeDb(static_cast<size_t>(state.range(0)), 400, 4.0, 7);
  MiningOptions options{.min_support = 5, .max_itemset_size = 6};
  auto all = FpGrowth(options).Mine(db);
  size_t maximal_count = 0;
  const auto alloc0 = bench::CurrentAllocCounts();
  for (auto _ : state) {
    FrequentItemsetResult maximal = FilterMaximal(*all);
    benchmark::DoNotOptimize(maximal_count = maximal.size());
  }
  bench::SetAllocCounters(state, alloc0);
  state.counters["frequent"] = static_cast<double>(all->size());
  state.counters["maximal"] = static_cast<double>(maximal_count);
}
BENCHMARK(BM_MaximalFilter)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_FpTreeBuild(benchmark::State& state) {
  TransactionDatabase db =
      MakeDb(static_cast<size_t>(state.range(0)), 400, 4.0, 7);
  const auto alloc0 = bench::CurrentAllocCounts();
  for (auto _ : state) {
    auto tree = FpTree::Build(db, 5);
    benchmark::DoNotOptimize(tree.node_count());
  }
  bench::SetAllocCounters(state, alloc0);
}
BENCHMARK(BM_FpTreeBuild)->Arg(1000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_TidListSupport(benchmark::State& state) {
  TransactionDatabase db = MakeDb(20000, 400, 4.0, 7);
  Rng rng(11);
  std::vector<Itemset> queries;
  for (int i = 0; i < 64; ++i) {
    Itemset q;
    for (size_t j = 0; j < static_cast<size_t>(state.range(0)); ++j) {
      q.push_back(static_cast<ItemId>(rng.Uniform(60)));
    }
    queries.push_back(MakeItemset(std::move(q)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Support(queries[i++ % queries.size()]));
  }
}
BENCHMARK(BM_TidListSupport)->Arg(2)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

// Tiny fixed fixture, every miner, every thread count: any disagreement in
// the canonical result hash is a correctness regression in the perf-tuned
// paths. Runs in well under a second — cheap enough for every ctest pass.
bool RunSmoke() {
  TransactionDatabase db = MakeDb(600, 60, 3.0, 13);
  MiningOptions base{.min_support = 3, .max_itemset_size = 5};
  struct Case {
    const char* name;
    uint64_t hash;
  };
  std::vector<Case> cases;
  for (size_t threads : {1u, 2u, 8u}) {
    MiningOptions options = base;
    options.num_threads = threads;
    auto mined = FpGrowth(options).Mine(db);
    if (!mined.ok()) {
      std::fprintf(stderr, "smoke: fp-growth failed: %s\n",
                   mined.status().ToString().c_str());
      return false;
    }
    cases.push_back({"fp-growth", bench::ResultHash(*mined)});
  }
  {
    auto mined = Eclat(base).Mine(db);
    if (!mined.ok()) return false;
    cases.push_back({"eclat", bench::ResultHash(*mined)});
  }
  {
    auto mined = Apriori(base).Mine(db);
    if (!mined.ok()) return false;
    cases.push_back({"apriori", bench::ResultHash(*mined)});
  }
  bool ok = true;
  for (const Case& c : cases) {
    std::printf("smoke: %-10s result-hash %016llx\n", c.name,
                static_cast<unsigned long long>(c.hash));
    if (c.hash != cases.front().hash) ok = false;
  }
  // Closed filter, serial vs sharded, on the fp-growth result.
  auto all = FpGrowth(base).Mine(db);
  const uint64_t closed1 = bench::ResultHash(FilterClosed(*all, 1));
  const uint64_t closed4 = bench::ResultHash(FilterClosed(*all, 4));
  std::printf("smoke: closed-1   result-hash %016llx\n",
              static_cast<unsigned long long>(closed1));
  std::printf("smoke: closed-4   result-hash %016llx\n",
              static_cast<unsigned long long>(closed4));
  if (closed1 != closed4) ok = false;
  if (!ok) std::fprintf(stderr, "smoke: RESULT HASH MISMATCH\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  maras::bench::BenchMainOptions options =
      maras::bench::ParseBenchArgs(argc, argv, "BENCH_mining.json");
  if (options.smoke) return RunSmoke() ? 0 : 1;
  return maras::bench::RunBenchmarksToJson(std::move(options),
                                           "bench_mining");
}
