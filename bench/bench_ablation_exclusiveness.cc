// Ablation bench for the design choices DESIGN.md calls out in the
// exclusiveness measure (Section 3.6):
//   * θ sweep 0 -> 1 (coefficient-of-variation penalty strength),
//   * linear cardinality decay f_d(k) on/off,
//   * exclusiveness vs. Bayardo's improvement vs. raw confidence/lift.
// Quality metric: mean rank (lower is better) of the injected ground-truth
// DDI signals under each scoring variant.

#include <cstdio>
#include <set>

#include "bench/bench_util.h"

namespace {

using maras::core::RankedMcac;

// Mean 1-based rank of the ground-truth signals; unmined signals count as
// worst-possible rank.
double MeanSignalRank(const std::vector<RankedMcac>& ranked,
                      const maras::faers::GroundTruth& truth,
                      const maras::mining::ItemDictionary& items) {
  double sum = 0.0;
  size_t count = 0;
  for (const auto& signal : truth.signals) {
    maras::mining::Itemset drugs;
    bool ok = true;
    for (const auto& name : signal.drugs) {
      auto id = items.Lookup(name);
      if (!id.ok()) {
        ok = false;
        break;
      }
      drugs.push_back(*id);
    }
    std::set<maras::mining::ItemId> adrs;
    for (const auto& name : signal.adrs) {
      auto id = items.Lookup(name);
      if (id.ok()) adrs.insert(*id);
    }
    if (!ok || adrs.empty()) continue;
    drugs = maras::mining::MakeItemset(std::move(drugs));
    size_t rank = ranked.size();
    for (size_t i = 0; i < ranked.size(); ++i) {
      if (!maras::mining::IsSubset(drugs, ranked[i].mcac.target.drugs)) {
        continue;
      }
      bool hit = false;
      for (auto id : ranked[i].mcac.target.adrs) hit |= adrs.count(id) > 0;
      if (hit) {
        rank = i;
        break;
      }
    }
    sum += static_cast<double>(rank + 1);
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace

int main() {
  using namespace maras;
  const double scale = bench::ScaleFromEnv();
  bench::PrintHeader("Ablation — exclusiveness design choices (Section 3.6)");
  bench::PreparedQuarter prepared = bench::PrepareQuarter(3, scale);
  core::MarasAnalyzer analyzer(bench::DefaultAnalyzerOptions(scale));
  auto analysis = analyzer.Analyze(prepared.pre);
  MARAS_CHECK(analysis.ok()) << analysis.status().ToString();
  std::printf("clusters: %zu\n", analysis->mcacs.size());

  std::printf("\nθ sweep (decay on, confidence measure): mean ground-truth "
              "signal rank\n");
  double best_theta_rank = 1e18;
  for (double theta : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    core::ExclusivenessOptions options;
    options.theta = theta;
    auto ranked = core::RankMcacs(
        analysis->mcacs, core::RankingMethod::kExclusivenessConfidence,
        options);
    double rank = MeanSignalRank(ranked, prepared.ground_truth,
                                 prepared.pre.items);
    best_theta_rank = std::min(best_theta_rank, rank);
    std::printf("  θ=%.2f -> mean rank %7.1f / %zu\n", theta, rank,
                ranked.size());
  }

  std::printf("\ndecay ablation (θ=0.5):\n");
  for (bool use_decay : {true, false}) {
    core::ExclusivenessOptions options;
    options.theta = 0.5;
    options.use_decay = use_decay;
    auto ranked = core::RankMcacs(
        analysis->mcacs, core::RankingMethod::kExclusivenessConfidence,
        options);
    std::printf("  decay %-3s -> mean rank %7.1f\n", use_decay ? "on" : "off",
                MeanSignalRank(ranked, prepared.ground_truth,
                               prepared.pre.items));
  }

  std::printf("\nscoring-method comparison:\n");
  double excl_rank = 0.0, conf_rank = 0.0;
  for (auto method : {core::RankingMethod::kConfidence,
                      core::RankingMethod::kLift,
                      core::RankingMethod::kImprovement,
                      core::RankingMethod::kExclusivenessConfidence,
                      core::RankingMethod::kExclusivenessLift}) {
    core::ExclusivenessOptions options;
    options.theta = 0.5;
    auto ranked = core::RankMcacs(analysis->mcacs, method, options);
    double rank = MeanSignalRank(ranked, prepared.ground_truth,
                                 prepared.pre.items);
    std::printf("  %-26s -> mean rank %7.1f\n",
                core::RankingMethodName(method), rank);
    if (method == core::RankingMethod::kExclusivenessConfidence) {
      excl_rank = rank;
    }
    if (method == core::RankingMethod::kConfidence) conf_rank = rank;
  }

  bool ok = excl_rank <= conf_rank;
  std::printf("\nDesign claim (exclusiveness ranks true DDIs above raw "
              "confidence): %s\n",
              ok ? "REPRODUCED" : "NOT reproduced");
  return ok ? 0 : 1;
}
