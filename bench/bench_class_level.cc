// Class-level aggregation harness (related-work direction: interactions
// among drug *classes*, Tatonetti et al.): pool the corpus to therapeutic
// classes and show that same-mechanism combinations — every NSAID × every
// anticoagulant — merge into one stronger class-level signal, with the
// drug-level pipeline untouched.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "faers/drug_classes.h"

int main() {
  using namespace maras;
  const double scale = bench::ScaleFromEnv();
  bench::PrintHeader("Class-level aggregation — drug vs therapeutic class");
  bench::PreparedQuarter prepared = bench::PrepareQuarter(2, scale);

  core::MarasAnalyzer analyzer(bench::DefaultAnalyzerOptions(scale));
  auto drug_level = analyzer.Analyze(prepared.pre);
  MARAS_CHECK(drug_level.ok()) << drug_level.status().ToString();

  auto class_input =
      faers::AggregateToClasses(prepared.pre, faers::ClassMap::Curated());
  MARAS_CHECK(class_input.ok()) << class_input.status().ToString();
  auto class_level = analyzer.Analyze(*class_input);
  MARAS_CHECK(class_level.ok()) << class_level.status().ToString();

  std::printf("vocabulary: %zu drugs -> %zu class-level drug items\n",
              prepared.pre.stats.distinct_drugs,
              class_input->stats.distinct_drugs);
  std::printf("clusters:   %zu drug-level -> %zu class-level\n\n",
              drug_level->mcacs.size(), class_level->mcacs.size());

  // The NSAID × anticoagulant signature: at drug level, aspirin+warfarin
  // carries the injected signal while other member pairs are sparse; at
  // class level every member pair pools into CLASS:NSAID × COAG.
  auto nsaid = class_input->items.Lookup("CLASS:NSAID");
  auto coag = class_input->items.Lookup("CLASS:ANTICOAGULANT");
  MARAS_CHECK(nsaid.ok() && coag.ok());
  mining::Itemset class_pair =
      mining::MakeItemset({*nsaid, *coag});
  size_t class_pair_support = class_input->transactions.Support(class_pair);

  // Sum of member-pair supports at drug level (for contrast).
  const char* nsaids[] = {"ASPIRIN", "IBUPROFEN", "NAPROXEN", "DICLOFENAC",
                          "CELECOXIB"};
  const char* coags[] = {"WARFARIN", "RIVAROXABAN", "APIXABAN"};
  std::printf("drug-level member pairs (reports with both):\n");
  size_t best_member = 0;
  for (const char* n : nsaids) {
    for (const char* c : coags) {
      auto id_n = prepared.pre.items.Lookup(n);
      auto id_c = prepared.pre.items.Lookup(c);
      if (!id_n.ok() || !id_c.ok()) continue;
      size_t support = prepared.pre.transactions.Support(
          mining::MakeItemset({*id_n, *id_c}));
      if (support > 0) {
        std::printf("  %-12s + %-12s : %zu\n", n, c, support);
      }
      best_member = std::max(best_member, support);
    }
  }
  std::printf("class level CLASS:NSAID + CLASS:ANTICOAGULANT : %zu\n\n",
              class_pair_support);

  // Rank of the class pair with HAEMORRHAGE among class-level clusters.
  auto ranked = core::RankMcacs(
      class_level->mcacs, core::RankingMethod::kExclusivenessConfidence, {});
  auto haem = class_input->items.Lookup("HAEMORRHAGE");
  size_t rank = SIZE_MAX;
  if (haem.ok()) {
    for (size_t i = 0; i < ranked.size(); ++i) {
      if (mining::IsSubset(class_pair, ranked[i].mcac.target.drugs) &&
          mining::Contains(ranked[i].mcac.target.adrs, *haem)) {
        rank = i;
        break;
      }
    }
  }
  if (rank != SIZE_MAX) {
    std::printf("CLASS:NSAID + CLASS:ANTICOAGULANT => HAEMORRHAGE ranks "
                "%zu/%zu by exclusiveness\n",
                rank + 1, ranked.size());
  } else {
    std::printf("class-level haemorrhage cluster not mined\n");
  }

  bool ok = class_pair_support > best_member && rank != SIZE_MAX;
  std::printf("\nShape (class pooling strengthens the mechanism-level "
              "signal above any single member pair): %s\n",
              ok ? "REPRODUCED" : "NOT reproduced");
  return ok ? 0 : 1;
}
