// Regenerates Section 5.4's case studies: each published drug-drug
// interaction (Ibuprofen+Metamizole -> acute renal failure,
// Methotrexate+Prograf -> drug ineffective, Prevacid+Nexium -> osteoporosis,
// plus the intro's Aspirin+Warfarin and the table examples) is injected into
// the synthetic corpus; the harness verifies MARAS (a) mines it, (b) ranks
// it near the top under exclusiveness, and (c) ranks the single-drug-driven
// decoy clusters below it, despite their equal or higher raw confidence.

#include <algorithm>
#include <cstdio>
#include <set>

#include "bench/bench_util.h"

namespace {

using maras::core::RankedMcac;
using maras::mining::Itemset;

size_t FindRank(const std::vector<RankedMcac>& ranked, const Itemset& drugs,
                const std::set<maras::mining::ItemId>& adrs) {
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (!maras::mining::IsSubset(drugs, ranked[i].mcac.target.drugs)) continue;
    for (auto id : ranked[i].mcac.target.adrs) {
      if (adrs.count(id) > 0) return i;
    }
  }
  return SIZE_MAX;
}

}  // namespace

int main() {
  using namespace maras;
  const double scale = bench::ScaleFromEnv();
  bench::PrintHeader("Section 5.4 — Case studies (known DDI recovery)");
  bench::PreparedQuarter prepared = bench::PrepareQuarter(2, scale);
  core::MarasAnalyzer analyzer(bench::DefaultAnalyzerOptions(scale));
  auto analysis = analyzer.Analyze(prepared.pre);
  MARAS_CHECK(analysis.ok()) << analysis.status().ToString();

  core::ExclusivenessOptions scoring;
  scoring.theta = 0.5;
  auto by_excl = core::RankMcacs(
      analysis->mcacs, core::RankingMethod::kExclusivenessConfidence, scoring);
  auto by_conf =
      core::RankMcacs(analysis->mcacs, core::RankingMethod::kConfidence,
                      scoring);
  const size_t n = by_excl.size();
  std::printf("ranked clusters: %zu\n\n", n);

  size_t recovered = 0, in_top_quartile = 0, improved_vs_conf = 0;
  for (const auto& known : faers::KnownInteractions()) {
    Itemset drugs;
    bool all_found = true;
    for (const auto& name : known.drugs) {
      auto id = prepared.pre.items.Lookup(name);
      if (!id.ok()) {
        all_found = false;
        break;
      }
      drugs.push_back(*id);
    }
    std::set<mining::ItemId> adrs;
    for (const auto& name : known.adrs) {
      auto id = prepared.pre.items.Lookup(name);
      if (id.ok()) adrs.insert(*id);
    }
    if (!all_found || adrs.empty()) {
      std::printf("%-40s  NOT PRESENT in vocabulary after cleaning\n",
                  known.name.c_str());
      continue;
    }
    drugs = mining::MakeItemset(std::move(drugs));
    size_t rank_excl = FindRank(by_excl, drugs, adrs);
    size_t rank_conf = FindRank(by_conf, drugs, adrs);
    if (rank_excl == SIZE_MAX) {
      std::printf("%-40s  NOT MINED\n", known.name.c_str());
      continue;
    }
    ++recovered;
    if (rank_excl < n / 4 + 1) ++in_top_quartile;
    if (rank_conf == SIZE_MAX || rank_excl <= rank_conf) ++improved_vs_conf;
    std::printf("%-40s  excl-rank %4zu/%zu   conf-rank %4zu   %s\n",
                known.name.c_str(), rank_excl + 1, n,
                rank_conf == SIZE_MAX ? 0 : rank_conf + 1,
                known.provenance.substr(0, 46).c_str());
  }

  std::printf("\nrecovered %zu/%zu known interactions; %zu in top quartile "
              "by exclusiveness; %zu ranked no worse than by confidence\n",
              recovered, faers::KnownInteractions().size(), in_top_quartile,
              improved_vs_conf);
  bool ok = recovered == faers::KnownInteractions().size() &&
            in_top_quartile >= recovered / 2;
  std::printf("Paper shape (all case studies recovered, mostly top-ranked): %s\n",
              ok ? "REPRODUCED" : "NOT reproduced");
  return ok ? 0 : 1;
}
