#ifndef MARAS_BENCH_BENCH_UTIL_H_
#define MARAS_BENCH_BENCH_UTIL_H_

// Shared helpers for the table/figure regeneration harnesses. Every harness
// honors MARAS_SCALE (a float multiplier on report counts, default 1.0 =
// 25,000 background reports per quarter; 5.0 ≈ paper scale) and MARAS_SEED.

#include <cstdio>
#include <cstdlib>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "core/analyzer.h"
#include "faers/generator.h"
#include "faers/preprocess.h"
#include "util/logging.h"

namespace maras::bench {

// Peak resident set size of this process in bytes; 0 when the platform
// doesn't expose it. Lets harnesses report real memory high-water marks
// next to MemoryBudget's sizeof-based estimates.
inline size_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<size_t>(usage.ru_maxrss);  // bytes
#else
  return static_cast<size_t>(usage.ru_maxrss) * 1024;  // KiB
#endif
#else
  return 0;
#endif
}

inline double ScaleFromEnv() {
  const char* env = std::getenv("MARAS_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

inline uint64_t SeedFromEnv() {
  const char* env = std::getenv("MARAS_SEED");
  if (env == nullptr) return 20140101;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

inline faers::GeneratorConfig QuarterConfig(int quarter, double scale) {
  faers::GeneratorConfig config;
  config.seed = SeedFromEnv();
  config.year = 2014;
  config.quarter = quarter;
  config.n_reports = static_cast<size_t>(25000.0 * scale);
  config.n_drugs = static_cast<size_t>(2500.0 * scale) + 500;
  config.n_adrs = static_cast<size_t>(900.0 * scale) + 200;
  return config;
}

// Generates and preprocesses one quarter; fatal on error (bench context).
struct PreparedQuarter {
  faers::QuarterDataset dataset;
  faers::GroundTruth ground_truth;
  faers::PreprocessResult pre;
};

inline PreparedQuarter PrepareQuarter(int quarter, double scale) {
  faers::SyntheticGenerator generator(QuarterConfig(quarter, scale));
  auto dataset = generator.Generate();
  MARAS_CHECK(dataset.ok()) << dataset.status().ToString();
  faers::Preprocessor preprocessor{faers::PreprocessOptions{}};
  auto pre = preprocessor.Process(*dataset);
  MARAS_CHECK(pre.ok()) << pre.status().ToString();
  return PreparedQuarter{*std::move(dataset), generator.ground_truth(),
                         *std::move(pre)};
}

inline core::AnalyzerOptions DefaultAnalyzerOptions(double scale) {
  core::AnalyzerOptions options;
  // Low support, as the paper requires for rare drug combinations
  // (Section 1.3); tracks scale so the mined family stays comparable.
  // 6 at the default 25k-report scale: low enough to keep rare true
  // combinations (~36 surviving reports each), high enough to suppress the
  // 4-of-4 coincidence pairs a high-base-rate ADR produces.
  size_t min_support = static_cast<size_t>(6.0 * scale);
  options.mining.min_support = min_support < 6 ? 6 : min_support;
  options.mining.max_itemset_size = 7;
  return options;
}

inline void PrintRule(const char* prefix, const core::DrugAdrRule& rule,
                      const mining::ItemDictionary& items, double score) {
  std::printf("%s%-70s  supp=%-4zu conf=%.3f lift=%7.2f score=%.4f\n", prefix,
              core::RuleToString(rule, items).c_str(), rule.support,
              rule.confidence, rule.lift, score);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace maras::bench

#endif  // MARAS_BENCH_BENCH_UTIL_H_
