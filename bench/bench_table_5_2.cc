// Regenerates Table 5.2: the top-5 multi-drug associations from the 2014 Q1
// data under four ranking methods — Confidence, Lift, Exclusiveness with
// Confidence, Exclusiveness with Lift. The paper's qualitative findings to
// reproduce: (a) plain confidence/lift rankings are dominated by redundant,
// single-drug-driven clusters (the antacid/osteoporosis family), (b) the
// exclusiveness rankings are more diverse and surface the injected
// drug-drug-interaction signals, (c) the lift variant favors rarer ADRs.

#include <cstdio>
#include <set>

#include "bench/bench_util.h"

namespace {

using maras::core::RankingMethod;

size_t DistinctDrugFamilies(const std::vector<maras::core::RankedMcac>& top) {
  // Rough diversity metric: distinct antecedent drug sets among the top-5.
  std::set<maras::mining::Itemset> families;
  for (const auto& r : top) families.insert(r.mcac.target.drugs);
  return families.size();
}

}  // namespace

int main() {
  using namespace maras;
  const double scale = bench::ScaleFromEnv();
  bench::PrintHeader(
      "Table 5.2 — Top 5 multi-drug associations, 2014 Q1, four rankings");
  bench::PreparedQuarter prepared = bench::PrepareQuarter(1, scale);
  core::MarasAnalyzer analyzer(bench::DefaultAnalyzerOptions(scale));
  auto analysis = analyzer.Analyze(prepared.pre);
  MARAS_CHECK(analysis.ok()) << analysis.status().ToString();
  std::printf("MCAC candidates: %zu\n", analysis->mcacs.size());

  core::ExclusivenessOptions scoring;
  scoring.theta = 0.5;

  const RankingMethod methods[] = {
      RankingMethod::kConfidence,
      RankingMethod::kLift,
      RankingMethod::kExclusivenessConfidence,
      RankingMethod::kExclusivenessLift,
  };

  std::vector<std::vector<core::RankedMcac>> tops;
  for (RankingMethod method : methods) {
    auto ranked = core::RankMcacs(analysis->mcacs, method, scoring);
    std::printf("\n--- ranked by %s ---\n", core::RankingMethodName(method));
    std::vector<core::RankedMcac> top;
    for (size_t i = 0; i < std::min<size_t>(5, ranked.size()); ++i) {
      char prefix[8];
      std::snprintf(prefix, sizeof(prefix), "  %zu. ", i + 1);
      bench::PrintRule(prefix, ranked[i].mcac.target, prepared.pre.items,
                       ranked[i].score);
      top.push_back(ranked[i]);
    }
    tops.push_back(std::move(top));
  }

  // Qualitative checks from the paper's discussion of Table 5.2.
  size_t diversity_conf = DistinctDrugFamilies(tops[0]);
  size_t diversity_excl = DistinctDrugFamilies(tops[2]);
  std::printf("\nDiversity (distinct drug combinations in top-5):\n");
  std::printf("  confidence ranking: %zu   exclusiveness ranking: %zu\n",
              diversity_conf, diversity_excl);

  // Mean consequent base-rate of the two exclusiveness variants: the lift
  // variant should favor rarer ADRs (smaller consequent support).
  auto mean_consequent = [&](const std::vector<core::RankedMcac>& top) {
    double sum = 0;
    for (const auto& r : top) {
      sum += static_cast<double>(r.mcac.target.consequent_support);
    }
    return top.empty() ? 0.0 : sum / static_cast<double>(top.size());
  };
  double rate_conf = mean_consequent(tops[2]);
  double rate_lift = mean_consequent(tops[3]);
  std::printf("  mean consequent support: excl+conf=%.1f, excl+lift=%.1f "
              "(lift variant favors rarer ADRs: %s)\n",
              rate_conf, rate_lift, rate_lift <= rate_conf ? "yes" : "no");
  bool ok = diversity_excl >= diversity_conf;
  std::printf("\nPaper shape (exclusiveness top-5 at least as diverse): %s\n",
              ok ? "REPRODUCED" : "NOT reproduced");
  return ok ? 0 : 1;
}
