// Thread-scaling benchmarks for the parallel mining engine: FP-Growth's
// per-item fan-out, the sharded closed-set filter, the end-to-end analyzer,
// and the multi-quarter pipeline, each swept over num_threads so the bench
// trajectory records speedup vs thread count. The serial (Arg = 1)
// measurements double as the regression baseline; every parallel
// configuration produces byte-identical output (asserted by
// mining_differential_test and by `--smoke`), so these runs compare cost
// only. Results land in BENCH_parallel_mining.json (wall-clock, allocations
// per iteration, thread counts, peak RSS) for cross-PR diffing.

#include <benchmark/benchmark.h>

#include "bench/alloc_counter.h"
#include "bench/bench_json.h"
#include "core/analyzer.h"
#include "core/multi_quarter.h"
#include "faers/generator.h"
#include "faers/preprocess.h"
#include "mining/closed_itemsets.h"
#include "mining/fpgrowth.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace {

using namespace maras;
using namespace maras::mining;

// Same FAERS-shaped Zipfian workload as bench_mining, sized so the mining
// phase dominates and the fan-out has ~400 top-level items to spread.
TransactionDatabase MakeDb(size_t transactions, size_t items,
                           double mean_len, uint64_t seed) {
  Rng rng(seed);
  ZipfTable zipf(items, 1.05);
  TransactionDatabase db;
  for (size_t t = 0; t < transactions; ++t) {
    Itemset txn;
    size_t len = 1 + static_cast<size_t>(rng.Poisson(mean_len));
    for (size_t i = 0; i < len; ++i) {
      txn.push_back(static_cast<ItemId>(zipf.Sample(&rng)));
    }
    db.Add(std::move(txn));
  }
  return db;
}

void BM_ParallelFpGrowth(benchmark::State& state) {
  TransactionDatabase db = MakeDb(8000, 400, 4.0, 7);
  MiningOptions options{.min_support = 5,
                        .max_itemset_size = 6,
                        .num_threads = static_cast<size_t>(state.range(0))};
  FpGrowth miner(options);
  size_t found = 0;
  const auto alloc0 = bench::CurrentAllocCounts();
  for (auto _ : state) {
    auto result = miner.Mine(db);
    benchmark::DoNotOptimize(found = result->size());
  }
  bench::SetAllocCounters(state, alloc0);
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["itemsets"] = static_cast<double>(found);
}
BENCHMARK(BM_ParallelFpGrowth)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ParallelMineClosed(benchmark::State& state) {
  TransactionDatabase db = MakeDb(8000, 400, 4.0, 7);
  MiningOptions options{.min_support = 5,
                        .max_itemset_size = 6,
                        .num_threads = static_cast<size_t>(state.range(0))};
  size_t closed_count = 0;
  const auto alloc0 = bench::CurrentAllocCounts();
  for (auto _ : state) {
    auto closed = MineClosed(db, options);
    benchmark::DoNotOptimize(closed_count = closed->size());
  }
  bench::SetAllocCounters(state, alloc0);
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["closed"] = static_cast<double>(closed_count);
}
BENCHMARK(BM_ParallelMineClosed)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ParallelAnalyzer(benchmark::State& state) {
  faers::GeneratorConfig config;
  config.seed = 4242;
  config.n_reports = 4000;
  config.n_drugs = 600;
  config.n_adrs = 250;
  config.signals = faers::DefaultSignals(8000);
  faers::SyntheticGenerator generator(config);
  auto dataset = generator.Generate();
  faers::Preprocessor preprocessor{faers::PreprocessOptions{}};
  auto pre = preprocessor.Process(*dataset);

  core::AnalyzerOptions options;
  options.mining.min_support = 4;
  options.mining.max_itemset_size = 6;
  options.mining.num_threads = static_cast<size_t>(state.range(0));
  core::MarasAnalyzer analyzer(options);
  size_t mcacs = 0;
  const auto alloc0 = bench::CurrentAllocCounts();
  for (auto _ : state) {
    auto analysis = analyzer.Analyze(*pre);
    benchmark::DoNotOptimize(mcacs = analysis->mcacs.size());
  }
  bench::SetAllocCounters(state, alloc0);
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["mcacs"] = static_cast<double>(mcacs);
}
BENCHMARK(BM_ParallelAnalyzer)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ParallelMultiQuarter(benchmark::State& state) {
  // Four in-memory quarters, processed one-task-per-quarter.
  std::vector<faers::QuarterDataset> quarters;
  for (int q = 1; q <= 4; ++q) {
    faers::GeneratorConfig config;
    config.seed = 5000 + q;
    config.year = 2014;
    config.quarter = q;
    config.n_reports = 1500;
    config.n_drugs = 400;
    config.n_adrs = 150;
    faers::SyntheticGenerator generator(config);
    quarters.push_back(*generator.Generate());
  }
  core::MultiQuarterOptions options;
  options.num_threads = static_cast<size_t>(state.range(0));
  core::MultiQuarterPipeline pipeline(options);
  size_t merged = 0;
  const auto alloc0 = bench::CurrentAllocCounts();
  for (auto _ : state) {
    auto run = pipeline.Run(quarters);
    benchmark::DoNotOptimize(merged = run->merged.transactions.size());
  }
  bench::SetAllocCounters(state, alloc0);
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["reports"] = static_cast<double>(merged);
}
BENCHMARK(BM_ParallelMultiQuarter)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ParallelForOverhead(benchmark::State& state) {
  // Dispatch cost per index for an empty body — the floor below which
  // parallelizing a loop cannot pay off.
  const size_t n = 10000;
  for (auto _ : state) {
    ParallelFor(static_cast<size_t>(state.range(0)), n,
                [](size_t i) { benchmark::DoNotOptimize(i); });
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(4)->UseRealTime();

// Tiny fixture, thread sweep: FP-Growth and the closed pipeline must hash
// identically at every thread count (the determinism contract the parallel
// engine is built on), in Release, on every ctest pass.
bool RunSmoke() {
  TransactionDatabase db = MakeDb(800, 80, 3.0, 29);
  bool ok = true;
  uint64_t first_fp = 0, first_closed = 0;
  for (size_t threads : {1u, 2u, 8u}) {
    MiningOptions options{.min_support = 3,
                          .max_itemset_size = 5,
                          .num_threads = threads};
    auto mined = FpGrowth(options).Mine(db);
    auto closed = MineClosed(db, options);
    if (!mined.ok() || !closed.ok()) {
      std::fprintf(stderr, "smoke: mining failed at %zu threads\n", threads);
      return false;
    }
    const uint64_t fp_hash = bench::ResultHash(*mined);
    const uint64_t closed_hash = bench::ResultHash(*closed);
    std::printf(
        "smoke: threads=%zu fp-growth %016llx closed %016llx\n", threads,
        static_cast<unsigned long long>(fp_hash),
        static_cast<unsigned long long>(closed_hash));
    if (threads == 1) {
      first_fp = fp_hash;
      first_closed = closed_hash;
    } else if (fp_hash != first_fp || closed_hash != first_closed) {
      ok = false;
    }
  }
  if (!ok) std::fprintf(stderr, "smoke: RESULT HASH MISMATCH\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  maras::bench::BenchMainOptions options = maras::bench::ParseBenchArgs(
      argc, argv, "BENCH_parallel_mining.json");
  if (options.smoke) return RunSmoke() ? 0 : 1;
  return maras::bench::RunBenchmarksToJson(std::move(options),
                                           "bench_parallel_mining");
}
