// Micro-benchmarks for the text-cleaning substrate: name normalization,
// bounded edit distance, dictionary resolution (exact/alias/fuzzy), and the
// full per-quarter preprocessing pass.

#include <benchmark/benchmark.h>

#include "faers/generator.h"
#include "faers/preprocess.h"
#include "faers/vocabulary.h"
#include "text/dictionary.h"
#include "text/edit_distance.h"
#include "text/normalizer.h"

namespace {

using namespace maras;

void BM_NormalizeName(benchmark::State& state) {
  const std::string raw = "  Zoledronic-Acid 4MG/5ML  INJECTION (UNKNOWN) ";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::NormalizeName(raw));
  }
}
BENCHMARK(BM_NormalizeName);

void BM_DamerauLevenshtein(benchmark::State& state) {
  const std::string a = "GRANULOCYTE COLONY STIMULATING FACTOR";
  const std::string b = "GRANULOCYTE COLONY STIMULATNG FACTOR";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::DamerauLevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_DamerauLevenshtein);

void BM_BoundedEditDistance(benchmark::State& state) {
  const std::string a = "METHYLPREDNISOLONE";
  const std::string b = "CYCLOPHOSPHAMIDE";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::BoundedDamerauLevenshtein(a, b, 1));
  }
}
BENCHMARK(BM_BoundedEditDistance);

text::Dictionary FullDictionary() {
  text::Dictionary dict;
  for (const auto& name : faers::CuratedDrugNames()) {
    dict.AddCanonical(name);
  }
  for (const auto& name : faers::SyntheticNames("DRUG", 3000)) {
    dict.AddCanonical(name);
  }
  for (const auto& alias : faers::CuratedDrugAliases()) {
    // Curated aliases never collide with their canonical; benchmark setup.
    MARAS_IGNORE_STATUS(dict.AddAlias(alias.alias, alias.canonical));
  }
  return dict;
}

void BM_DictionaryExactHit(benchmark::State& state) {
  text::Dictionary dict = FullDictionary();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.Resolve("METHOTREXATE", 1));
  }
}
BENCHMARK(BM_DictionaryExactHit);

void BM_DictionaryFuzzyHit(benchmark::State& state) {
  text::Dictionary dict = FullDictionary();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.Resolve("METHOTREXTE", 1));
  }
}
BENCHMARK(BM_DictionaryFuzzyHit);

void BM_DictionaryMiss(benchmark::State& state) {
  text::Dictionary dict = FullDictionary();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.Resolve("COMPLETELY UNRELATED NAME", 1));
  }
}
BENCHMARK(BM_DictionaryMiss);

void BM_PreprocessQuarter(benchmark::State& state) {
  faers::GeneratorConfig config;
  config.n_reports = static_cast<size_t>(state.range(0));
  config.n_drugs = 1000;
  config.n_adrs = 400;
  faers::SyntheticGenerator generator(config);
  auto dataset = generator.Generate();
  faers::Preprocessor preprocessor{faers::PreprocessOptions{}};
  size_t kept = 0;
  for (auto _ : state) {
    auto result = preprocessor.Process(*dataset);
    benchmark::DoNotOptimize(kept = result->stats.reports_kept);
  }
  state.counters["reports_kept"] = static_cast<double>(kept);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset->reports.size()));
}
BENCHMARK(BM_PreprocessQuarter)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
