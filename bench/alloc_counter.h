#ifndef MARAS_BENCH_ALLOC_COUNTER_H_
#define MARAS_BENCH_ALLOC_COUNTER_H_

// Process-wide heap-allocation counter for the mining micro-benchmarks.
// Linking alloc_counter.cc into a binary replaces the global operator
// new/delete family with counting wrappers (relaxed atomics over malloc), so
// a benchmark can report allocations-per-iteration next to wall-clock — the
// number the cache-compact mining core is meant to drive down. Only the
// microbench targets link it; tests and the library proper keep the default
// allocator.

#include <cstddef>
#include <cstdint>

#include <benchmark/benchmark.h>

namespace maras::bench {

struct AllocCounts {
  uint64_t allocs = 0;
  uint64_t bytes = 0;
};

// Totals since process start. Monotone; never reset.
AllocCounts CurrentAllocCounts();

// Records the allocation delta since `since` as per-iteration benchmark
// counters ("allocs" and "alloc_bytes"). Call after the timing loop.
inline void SetAllocCounters(benchmark::State& state,
                             const AllocCounts& since) {
  const AllocCounts now = CurrentAllocCounts();
  const double iters = static_cast<double>(
      state.iterations() > 0 ? state.iterations() : 1);
  state.counters["allocs"] =
      static_cast<double>(now.allocs - since.allocs) / iters;
  state.counters["alloc_bytes"] =
      static_cast<double>(now.bytes - since.bytes) / iters;
}

}  // namespace maras::bench

#endif  // MARAS_BENCH_ALLOC_COUNTER_H_
