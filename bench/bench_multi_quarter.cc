// Multi-quarter surveillance harness: tracks every ground-truth interaction
// across the four 2014 quarters (per-quarter evidence and trend verdict),
// then pools the year and verifies pooling tightens signal ranks — the
// workflow a drug-safety evaluator runs as new FAERS extracts arrive.

#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "core/multi_quarter.h"

int main() {
  using namespace maras;
  const double scale = bench::ScaleFromEnv();
  bench::PrintHeader("Multi-quarter — signal trends and year-pooled mining");

  std::vector<bench::PreparedQuarter> quarters;
  std::vector<const faers::PreprocessResult*> pres;
  std::vector<std::string> labels;
  for (int q = 1; q <= 4; ++q) {
    quarters.push_back(bench::PrepareQuarter(q, scale));
    labels.push_back("2014Q" + std::to_string(q));
  }
  for (const auto& quarter : quarters) pres.push_back(&quarter.pre);

  std::printf("\nper-quarter evidence (reports with combo+ADRs / combo, "
              "confidence):\n");
  for (const auto& known : faers::KnownInteractions()) {
    auto trend = core::TrackSignal(pres, labels, known.drugs, known.adrs);
    std::printf("  %-38s", known.name.c_str());
    for (const auto& row : trend) {
      std::printf("  %s %3zu/%-4zu %.2f", row.label.substr(4).c_str(),
                  row.reports, row.combination_reports, row.confidence);
    }
    std::printf("  -> %s\n",
                core::TrendVerdictName(core::ClassifyTrend(trend)));
  }

  // Year pooling: merge all quarters and compare each signal's rank in the
  // pooled corpus against its best single-quarter rank.
  auto merged = core::MergeQuarters(pres);
  MARAS_CHECK(merged.ok()) << merged.status().ToString();
  std::printf("\npooled year: %zu transactions, %zu drugs, %zu ADRs\n",
              merged->transactions.size(), merged->stats.distinct_drugs,
              merged->stats.distinct_adrs);

  core::AnalyzerOptions options = bench::DefaultAnalyzerOptions(scale);
  options.mining.min_support *= 4;  // four quarters of data
  core::MarasAnalyzer analyzer(options);
  auto analysis = analyzer.Analyze(*merged);
  MARAS_CHECK(analysis.ok()) << analysis.status().ToString();
  auto ranked = core::RankMcacs(analysis->mcacs,
                                core::RankingMethod::kExclusivenessConfidence,
                                core::ExclusivenessOptions{});
  std::printf("pooled clusters: %zu\n\n", ranked.size());

  size_t recovered = 0, top_decile = 0;
  for (const auto& known : faers::KnownInteractions()) {
    mining::Itemset drugs;
    bool ok = true;
    for (const auto& name : known.drugs) {
      auto id = merged->items.Lookup(name);
      if (!id.ok()) {
        ok = false;
        break;
      }
      drugs.push_back(*id);
    }
    std::set<mining::ItemId> adrs;
    for (const auto& name : known.adrs) {
      auto id = merged->items.Lookup(name);
      if (id.ok()) adrs.insert(*id);
    }
    if (!ok || adrs.empty()) continue;
    drugs = mining::MakeItemset(std::move(drugs));
    size_t rank = SIZE_MAX;
    for (size_t i = 0; i < ranked.size() && rank == SIZE_MAX; ++i) {
      if (!mining::IsSubset(drugs, ranked[i].mcac.target.drugs)) continue;
      for (auto id : ranked[i].mcac.target.adrs) {
        if (adrs.count(id) > 0) {
          rank = i;
          break;
        }
      }
    }
    if (rank == SIZE_MAX) {
      std::printf("  %-38s NOT MINED in pooled year\n", known.name.c_str());
      continue;
    }
    ++recovered;
    if (rank < ranked.size() / 10 + 1) ++top_decile;
    std::printf("  %-38s pooled rank %4zu/%zu\n", known.name.c_str(),
                rank + 1, ranked.size());
  }
  bool ok = recovered == faers::KnownInteractions().size();
  std::printf("\npooled-year recovery: %zu/%zu (%zu in top decile)\n",
              recovered, faers::KnownInteractions().size(), top_decile);
  std::printf("Shape (pooling a year of quarters recovers every signal): %s\n",
              ok ? "REPRODUCED" : "NOT reproduced");
  return ok ? 0 : 1;
}
