// Regenerates Fig. 5.1: reduction in the number of rules per 2014 quarter —
// Total rules (all bipartition associations) vs. Filtered rules (drug ⇒ ADR
// form) vs. MCACs (closed, multi-drug clusters). The paper shows orders-of-
// magnitude drops on a log axis; this harness prints the counts, the
// log-scale bars, and verifies the monotone reduction.

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "mining/profile.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace {

void PrintLogBar(const char* label, uint64_t value) {
  int width = value == 0
                  ? 0
                  : static_cast<int>(8.0 * std::log10(static_cast<double>(value) + 1.0));
  std::printf("    %-15s %12s |", label,
              maras::FormatWithCommas(static_cast<long long>(value)).c_str());
  for (int i = 0; i < width; ++i) std::printf("#");
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace maras;
  const double scale = bench::ScaleFromEnv();
  bench::PrintHeader(
      "Fig. 5.1 — Reduction in number of rules (Total vs Filtered vs MCACs)");
  std::printf("scale=%.2f, min_support=%zu\n", scale,
              bench::DefaultAnalyzerOptions(scale).mining.min_support);

  bool shape_holds = true;
  for (int quarter = 1; quarter <= 4; ++quarter) {
    Stopwatch timer;
    bench::PreparedQuarter prepared = bench::PrepareQuarter(quarter, scale);
    core::MarasAnalyzer analyzer(bench::DefaultAnalyzerOptions(scale));
    auto analysis = analyzer.Analyze(prepared.pre);
    MARAS_CHECK(analysis.ok()) << analysis.status().ToString();
    const core::RuleSpaceStats& stats = analysis->stats;
    mining::DatabaseProfile profile =
        mining::ProfileDatabase(prepared.pre.transactions);
    std::printf("\n  2014 Q%d  (%.1fs, %zu transactions, density %.5f, "
                "mean length %.1f)\n",
                quarter, timer.ElapsedSeconds(),
                prepared.pre.transactions.size(), profile.density,
                profile.mean_transaction_length);
    PrintLogBar("Total rules", stats.total_rules);
    PrintLogBar("Filtered rules", stats.filtered_rules);
    PrintLogBar("MCACs", stats.mcac_count);
    double reduction_1 = stats.filtered_rules == 0
                             ? 0.0
                             : static_cast<double>(stats.total_rules) /
                                   static_cast<double>(stats.filtered_rules);
    double reduction_2 = stats.mcac_count == 0
                             ? 0.0
                             : static_cast<double>(stats.filtered_rules) /
                                   static_cast<double>(stats.mcac_count);
    std::printf("    reduction: total/filtered = %.1fx, filtered/MCAC = %.1fx\n",
                reduction_1, reduction_2);
    shape_holds = shape_holds && stats.total_rules > stats.filtered_rules &&
                  stats.filtered_rules > stats.mcac_count &&
                  stats.mcac_count > 0;
  }
  std::printf("\nPaper shape (Total >> Filtered >> MCACs across all quarters): %s\n",
              shape_holds ? "REPRODUCED" : "NOT reproduced");
  return shape_holds ? 0 : 1;
}
