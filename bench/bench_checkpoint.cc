// Checkpoint micro-benchmarks: codec encode/decode throughput (itemset
// families and mine-shard snapshots), atomic write+fsync+rename publish
// cost, and read+verify cost — the per-shard overhead every worker in the
// sharded pipeline pays. `--bench_json` writes the perf trajectory
// (bench/baselines/BENCH_checkpoint.json); `--smoke` runs the Release-mode
// result-hash gate: codecs must round-trip bit-exactly through the framed
// file format, and the union of item-range mine shards must hash identical
// to the unsharded mine (the invariant the shard supervisor's byte-identity
// rests on).

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/checkpoint.h"
#include "mining/fpgrowth.h"
#include "util/random.h"

namespace {

using namespace maras;
using mining::ItemId;
using mining::Itemset;
using mining::TransactionDatabase;

TransactionDatabase MakeDb(size_t transactions, size_t items,
                           double mean_len, uint64_t seed) {
  Rng rng(seed);
  ZipfTable zipf(items, 1.05);
  TransactionDatabase db;
  for (size_t t = 0; t < transactions; ++t) {
    Itemset txn;
    size_t len = 1 + static_cast<size_t>(rng.Poisson(mean_len));
    for (size_t i = 0; i < len; ++i) {
      txn.push_back(static_cast<ItemId>(zipf.Sample(&rng)));
    }
    db.Add(std::move(txn));
  }
  return db;
}

// A frequent-itemset family of roughly `n` itemsets, mined (not fabricated)
// so the codec sees realistic shape and support distributions.
mining::FrequentItemsetResult MakeFamily(size_t transactions) {
  TransactionDatabase db = MakeDb(transactions, 80, 4.0, 29);
  mining::MiningOptions options;
  options.min_support = 3;
  options.max_itemset_size = 5;
  auto mined = mining::FpGrowth(options).Mine(db);
  MARAS_CHECK(mined.ok()) << mined.status().ToString();
  return *std::move(mined);
}

std::string ScratchDir() {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "maras_bench_ckpt").string();
  std::filesystem::create_directories(dir);
  return dir;
}

void BM_EncodeItemsetResult(benchmark::State& state) {
  mining::FrequentItemsetResult family =
      MakeFamily(static_cast<size_t>(state.range(0)));
  std::string encoded;
  for (auto _ : state) {
    encoded = core::EncodeItemsetResult(family);
    benchmark::DoNotOptimize(encoded);
  }
  state.counters["itemsets"] =
      static_cast<double>(family.itemsets().size());
  state.counters["bytes"] = static_cast<double>(encoded.size());
}
BENCHMARK(BM_EncodeItemsetResult)->Arg(500)->Arg(2000)->Unit(
    benchmark::kMillisecond);

void BM_DecodeItemsetResult(benchmark::State& state) {
  const std::string encoded = core::EncodeItemsetResult(
      MakeFamily(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    auto decoded = core::DecodeItemsetResult(encoded);
    MARAS_CHECK(decoded.ok());
    benchmark::DoNotOptimize(decoded);
  }
  state.counters["bytes"] = static_cast<double>(encoded.size());
}
BENCHMARK(BM_DecodeItemsetResult)->Arg(500)->Arg(2000)->Unit(
    benchmark::kMillisecond);

void BM_EncodeMineShardCheckpoint(benchmark::State& state) {
  core::MineShardCheckpoint shard;
  shard.shard_index = 1;
  shard.shard_count = 4;
  shard.min_support = 3;
  shard.max_itemset_size = 5;
  shard.frequent = MakeFamily(1000);
  std::string encoded;
  for (auto _ : state) {
    encoded = core::EncodeMineShardCheckpoint(shard);
    benchmark::DoNotOptimize(encoded);
  }
  state.counters["bytes"] = static_cast<double>(encoded.size());
}
BENCHMARK(BM_EncodeMineShardCheckpoint)->Unit(benchmark::kMillisecond);

void BM_DecodeMineShardCheckpoint(benchmark::State& state) {
  core::MineShardCheckpoint shard;
  shard.shard_count = 4;
  shard.min_support = 3;
  shard.max_itemset_size = 5;
  shard.frequent = MakeFamily(1000);
  const std::string encoded = core::EncodeMineShardCheckpoint(shard);
  for (auto _ : state) {
    auto decoded = core::DecodeMineShardCheckpoint(encoded);
    MARAS_CHECK(decoded.ok());
    benchmark::DoNotOptimize(decoded);
  }
  state.counters["bytes"] = static_cast<double>(encoded.size());
}
BENCHMARK(BM_DecodeMineShardCheckpoint)->Unit(benchmark::kMillisecond);

void BM_WriteCheckpoint(benchmark::State& state) {
  const std::string dir = ScratchDir();
  const std::string payload = core::EncodeItemsetResult(
      MakeFamily(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    Status status = core::WriteCheckpoint(dir, "bench-write", payload);
    MARAS_CHECK(status.ok()) << status.ToString();
  }
  state.counters["bytes"] = static_cast<double>(payload.size());
}
BENCHMARK(BM_WriteCheckpoint)->Arg(500)->Arg(2000)->Unit(
    benchmark::kMillisecond);

void BM_ReadCheckpointVerify(benchmark::State& state) {
  const std::string dir = ScratchDir();
  const std::string payload = core::EncodeItemsetResult(
      MakeFamily(static_cast<size_t>(state.range(0))));
  MARAS_CHECK(core::WriteCheckpoint(dir, "bench-read", payload).ok());
  for (auto _ : state) {
    auto read = core::ReadCheckpoint(dir, "bench-read");
    MARAS_CHECK(read.ok()) << read.status().ToString();
    benchmark::DoNotOptimize(read);
  }
  state.counters["bytes"] = static_cast<double>(payload.size());
}
BENCHMARK(BM_ReadCheckpointVerify)->Arg(500)->Arg(2000)->Unit(
    benchmark::kMillisecond);

// Release-mode correctness gate (the bench-smoke ctest label).
bool RunSmoke() {
  bool ok = true;

  // 1) Codec + framing round-trip: family -> encode -> file -> read+verify
  //    -> decode -> re-encode must reproduce the exact bytes.
  mining::FrequentItemsetResult family = MakeFamily(400);
  const std::string encoded = core::EncodeItemsetResult(family);
  const std::string dir = ScratchDir();
  MARAS_CHECK(core::WriteCheckpoint(dir, "smoke", encoded).ok());
  auto read = core::ReadCheckpoint(dir, "smoke");
  MARAS_CHECK(read.ok()) << read.status().ToString();
  auto decoded = core::DecodeItemsetResult(*read);
  MARAS_CHECK(decoded.ok()) << decoded.status().ToString();
  const std::string reencoded = core::EncodeItemsetResult(*decoded);
  std::printf("smoke: family       result-hash %016llx (%zu itemsets)\n",
              static_cast<unsigned long long>(bench::ResultHash(family)),
              family.itemsets().size());
  if (reencoded != encoded) {
    std::fprintf(stderr, "smoke: codec round-trip is not bit-exact\n");
    ok = false;
  }

  // 2) Mine-shard partition invariant: the union of the item-range strides
  //    must hash identical to the unsharded mine at every shard count.
  TransactionDatabase db = MakeDb(600, 60, 3.0, 13);
  mining::MiningOptions base;
  base.min_support = 3;
  base.max_itemset_size = 5;
  auto whole = mining::FpGrowth(base).Mine(db);
  MARAS_CHECK(whole.ok());
  whole->SortCanonically();
  const uint64_t whole_hash = bench::ResultHash(*whole);
  std::printf("smoke: unsharded    result-hash %016llx\n",
              static_cast<unsigned long long>(whole_hash));
  for (size_t shards : {2u, 3u, 5u}) {
    mining::FrequentItemsetResult merged;
    for (size_t k = 0; k < shards; ++k) {
      mining::MiningOptions options = base;
      options.shard_index = k;
      options.shard_count = shards;
      auto part = mining::FpGrowth(options).Mine(db);
      MARAS_CHECK(part.ok()) << part.status().ToString();
      merged.Absorb(std::move(part).value());
    }
    merged.SortCanonically();
    const uint64_t hash = bench::ResultHash(merged);
    std::printf("smoke: %zu-sharded    result-hash %016llx\n", shards,
                static_cast<unsigned long long>(hash));
    if (hash != whole_hash) ok = false;
  }
  if (!ok) std::fprintf(stderr, "smoke: RESULT HASH MISMATCH\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  maras::bench::BenchMainOptions options =
      maras::bench::ParseBenchArgs(argc, argv, "BENCH_checkpoint.json");
  if (options.smoke) return RunSmoke() ? 0 : 1;
  return maras::bench::RunBenchmarksToJson(std::move(options),
                                           "bench_checkpoint");
}
