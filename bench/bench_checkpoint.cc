// Checkpoint overhead harness: how much does snapshotting each pipeline
// stage cost next to computing it, and how much of an interrupted run does
// resume actually save? Reports per-stage compute time, checkpoint
// write/read+verify time, snapshot sizes, and the wall-clock of a cold run
// vs a fully-resumed one, plus the process peak RSS next to the governed
// MemoryBudget estimate.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/checkpoint.h"
#include "core/multi_quarter.h"
#include "util/run_context.h"
#include "util/stopwatch.h"

int main() {
  using namespace maras;
  const double scale = bench::ScaleFromEnv();
  bench::PrintHeader("Checkpoint — snapshot overhead vs stage cost");

  std::vector<faers::QuarterDataset> quarters;
  for (int q = 1; q <= 4; ++q) {
    faers::SyntheticGenerator generator(bench::QuarterConfig(q, scale));
    auto dataset = generator.Generate();
    MARAS_CHECK(dataset.ok()) << dataset.status().ToString();
    quarters.push_back(*std::move(dataset));
  }

  const std::string dir =
      (std::filesystem::temp_directory_path() / "maras_bench_ckpt").string();
  std::filesystem::remove_all(dir);

  core::AnalyzerOptions analyzer = bench::DefaultAnalyzerOptions(scale);
  analyzer.mining.min_support *= 4;  // four quarters of data

  // Cold baseline: no checkpointing at all.
  Stopwatch cold_watch;
  core::MultiQuarterPipeline plain{core::MultiQuarterOptions{}};
  auto cold = plain.RunAnalyzed(quarters, analyzer);
  MARAS_CHECK(cold.ok()) << cold.status().ToString();
  const double cold_ms = cold_watch.ElapsedMillis();

  // Checkpointed run: same work plus a snapshot after every stage.
  core::MultiQuarterOptions snap_options;
  snap_options.checkpoint_dir = dir;
  Stopwatch snap_watch;
  auto snapped =
      core::MultiQuarterPipeline(snap_options).RunAnalyzed(quarters, analyzer);
  MARAS_CHECK(snapped.ok()) << snapped.status().ToString();
  const double snap_ms = snap_watch.ElapsedMillis();

  // Resumed run: every stage replayed from its validated snapshot.
  core::MultiQuarterOptions resume_options = snap_options;
  resume_options.resume = true;
  Stopwatch resume_watch;
  auto resumed = core::MultiQuarterPipeline(resume_options)
                     .RunAnalyzed(quarters, analyzer);
  MARAS_CHECK(resumed.ok()) << resumed.status().ToString();
  const double resume_ms = resume_watch.ElapsedMillis();
  MARAS_CHECK(core::EncodeRankedMcacs(resumed->ranked) ==
              core::EncodeRankedMcacs(cold->ranked))
      << "resumed ranking diverged from the cold run";

  std::printf("\ncold run          %8.1f ms   (%zu rules, %zu MCACs)\n",
              cold_ms, cold->rules.size(), cold->ranked.size());
  std::printf("checkpointed run  %8.1f ms   (+%.1f%% snapshot overhead)\n",
              snap_ms, 100.0 * (snap_ms - cold_ms) / cold_ms);
  std::printf("resumed run       %8.1f ms   (%zu stages replayed, %.1fx "
              "speedup)\n",
              resume_ms, resumed->stages_resumed, cold_ms / resume_ms);

  // Per-snapshot read+verify cost and sizes.
  std::printf("\nper-stage snapshots:\n");
  std::vector<std::string> stages;
  for (const auto& quarter : quarters) {
    stages.push_back("quarter-" + quarter.Label());
  }
  stages.insert(stages.end(), {"closed", "rules", "ranked"});
  for (const std::string& stage : stages) {
    const std::string path = core::CheckpointPath(dir, stage);
    const auto bytes = std::filesystem::file_size(path);
    Stopwatch read_watch;
    auto payload = core::ReadCheckpoint(dir, stage);
    MARAS_CHECK(payload.ok()) << payload.status().ToString();
    std::printf("  %-16s %9.1f KiB   read+verify %6.2f ms\n", stage.c_str(),
                static_cast<double>(bytes) / 1024.0,
                read_watch.ElapsedMillis());
  }

  std::printf("\npeak RSS: %.1f MiB\n",
              static_cast<double>(bench::PeakRssBytes()) / (1 << 20));
  std::filesystem::remove_all(dir);
  return 0;
}
