// Regenerates the paper's Appendix A artifacts (Figs. A.1–A.13): each
// user-study question rendered both ways — a row of Contextual Glyphs and
// the same candidates as bar charts — exactly the side-by-side sheets the
// 50 participants saw. One SVG per question per encoding, plus a combined
// sample sheet of interesting vs non-interesting groups (Fig. A.1–A.3).

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "study/user_study.h"
#include "viz/barchart.h"
#include "viz/glyph.h"

namespace {

using maras::viz::SvgDocument;

// Lays candidate renderings out in a row with index captions.
SvgDocument QuestionSheet(const std::vector<SvgDocument>& panels,
                          const std::string& title, double panel_w,
                          double panel_h) {
  const double caption = 26.0;
  SvgDocument sheet(panel_w * static_cast<double>(panels.size()) + 20.0,
                    panel_h + caption + 40.0);
  SvgDocument::TextStyle heading;
  heading.font_size = 14.0;
  heading.bold = true;
  sheet.Text(12.0, 22.0, title, heading);
  for (size_t i = 0; i < panels.size(); ++i) {
    const double x = 10.0 + panel_w * static_cast<double>(i);
    sheet.Embed(panels[i], x, 34.0,
                std::min(panel_w / panels[i].width(),
                         panel_h / panels[i].height()));
    SvgDocument::TextStyle label;
    label.font_size = 12.0;
    label.anchor = "middle";
    // Piecewise build: GCC 12's -Wrestrict false-positives (PR105651) on the
    // inlined operator+ temporary chain.
    std::string tag;
    tag += '(';
    tag += static_cast<char>('a' + i);
    tag += ')';
    sheet.Text(x + panel_w / 2.0, panel_h + caption + 28.0, tag, label);
  }
  return sheet;
}

}  // namespace

int main() {
  using namespace maras;
  const double scale = bench::ScaleFromEnv();
  bench::PrintHeader(
      "Appendix A — user-study question sheets (glyph vs barchart)");
  bench::PreparedQuarter prepared = bench::PrepareQuarter(1, scale);
  core::MarasAnalyzer analyzer(bench::DefaultAnalyzerOptions(scale));
  auto analysis = analyzer.Analyze(prepared.pre);
  MARAS_CHECK(analysis.ok()) << analysis.status().ToString();
  auto ranked = core::RankMcacs(
      analysis->mcacs, core::RankingMethod::kExclusivenessConfidence, {});
  auto questions = study::BuildQuestions(ranked, prepared.pre.items,
                                         /*decoys=*/3, bench::SeedFromEnv());
  MARAS_CHECK(!questions.empty()) << "no questions could be built";

  viz::ContextualGlyphRenderer glyph_renderer;
  viz::BarChartRenderer bar_renderer;

  for (const study::StudyQuestion& question : questions) {
    std::vector<SvgDocument> glyph_panels;
    std::vector<SvgDocument> bar_panels;
    for (viz::GlyphSpec spec : question.candidates) {
      spec.title.clear();  // participants saw unlabeled candidates
      glyph_panels.push_back(glyph_renderer.Render(spec));
      bar_panels.push_back(bar_renderer.Render(spec));
    }
    std::string stem =
        "appendix_q" + std::to_string(question.drugs_per_rule) + "drugs";
    std::string prompt = "Pick the most interesting " +
                         std::to_string(question.drugs_per_rule) +
                         "-drug interaction";
    auto emit = [&](const SvgDocument& doc, const std::string& path) {
      auto status = doc.WriteFile(path);
      std::printf("  %-34s %s\n", path.c_str(),
                  status.ok() ? "written" : status.ToString().c_str());
    };
    emit(QuestionSheet(glyph_panels, prompt + " (contextual glyphs)", 200,
                       200),
         stem + "_glyphs.svg");
    emit(QuestionSheet(bar_panels, prompt + " (bar charts)", 220, 160),
         stem + "_barcharts.svg");
  }

  // Sample sheet (Figs. A.1–A.3 style): top-ranked vs bottom-ranked cluster
  // of each size, side by side in both encodings.
  std::vector<SvgDocument> sample_panels;
  for (const auto& question : questions) {
    // candidates[correct] is the interesting one; pick any other as the
    // non-interesting sample.
    size_t correct = question.correct_indices.empty()
                         ? 0
                         : question.correct_indices[0];
    size_t boring = correct == 0 ? question.candidates.size() - 1 : 0;
    viz::GlyphSpec interesting = question.candidates[correct];
    viz::GlyphSpec uninteresting = question.candidates[boring];
    interesting.title = "interesting";
    uninteresting.title = "not interesting";
    sample_panels.push_back(glyph_renderer.Render(interesting));
    sample_panels.push_back(glyph_renderer.Render(uninteresting));
  }
  auto sample = QuestionSheet(sample_panels,
                              "Samples of interesting and non-interesting "
                              "groups (per antecedent size)",
                              190, 200);
  auto status = sample.WriteFile("appendix_samples.svg");
  std::printf("  %-34s %s\n", "appendix_samples.svg",
              status.ok() ? "written" : status.ToString().c_str());
  std::printf("\n%zu question sheets rendered\n", questions.size() * 2 + 1);
  return 0;
}
