// Regenerates Table 5.1: FAERS 2014 corpus statistics per quarter
// (reports / distinct drugs / distinct ADRs), on the synthetic FAERS
// substitute. Paper values are printed alongside for shape comparison; the
// synthetic corpus is scaled by MARAS_SCALE (1.0 -> ~25k reports/quarter,
// 5.0 ≈ paper scale).

#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace {

struct PaperRow {
  int quarter;
  long long reports;
  long long drugs;
  long long adrs;
};

// Table 5.1 as published (expedited reports, FAERS 2014).
constexpr PaperRow kPaper[] = {
    {1, 126755, 37661, 9079},
    {2, 138278, 37780, 9324},
    {3, 121725, 33133, 9418},
    {4, 121490, 32721, 9234},
};

}  // namespace

int main() {
  using namespace maras;
  const double scale = bench::ScaleFromEnv();
  bench::PrintHeader("Table 5.1 — FAERS data statistics per 2014 quarter");
  std::printf("scale=%.2f (MARAS_SCALE; 1.0 = 25k background reports/quarter)\n\n",
              scale);
  std::printf("%-4s | %12s %12s %9s | %12s %10s %9s %9s\n", "Q",
              "paper:reports", "paper:drugs", "paper:ADRs", "gen:reports",
              "gen:kept", "raw drugs", "ADRs");
  std::printf("-----+--------------------------------------+------------------------------------------\n");
  for (const PaperRow& row : kPaper) {
    Stopwatch timer;
    bench::PreparedQuarter quarter = bench::PrepareQuarter(row.quarter, scale);
    // Raw distinct verbatim drug strings (what the paper's "Drugs" counts,
    // before cleaning) and cleaned vocabulary sizes.
    std::set<std::string> raw_drugs;
    std::set<std::string> raw_adrs;
    for (const auto& report : quarter.dataset.reports) {
      raw_drugs.insert(report.drugs.begin(), report.drugs.end());
      raw_adrs.insert(report.reactions.begin(), report.reactions.end());
    }
    std::printf("%-4d | %12s %12s %9s | %12s %10s %9s %9s   (%.1fs)\n",
                row.quarter, FormatWithCommas(row.reports).c_str(),
                FormatWithCommas(row.drugs).c_str(),
                FormatWithCommas(row.adrs).c_str(),
                FormatWithCommas(
                    static_cast<long long>(quarter.dataset.reports.size()))
                    .c_str(),
                FormatWithCommas(
                    static_cast<long long>(quarter.pre.stats.reports_kept))
                    .c_str(),
                FormatWithCommas(static_cast<long long>(raw_drugs.size()))
                    .c_str(),
                FormatWithCommas(static_cast<long long>(raw_adrs.size()))
                    .c_str(),
                timer.ElapsedSeconds());
    std::printf(
        "     |   cleaning: %zu fuzzy fixes, %zu alias merges -> %zu drugs, "
        "%zu ADRs after cleaning\n",
        quarter.pre.stats.fuzzy_corrections,
        quarter.pre.stats.alias_resolutions, quarter.pre.stats.distinct_drugs,
        quarter.pre.stats.distinct_adrs);
  }
  std::printf(
      "\nShape check: reports ~O(100k-scale) with thousands of distinct drug\n"
      "strings and ~1k ADR terms; raw drug-string count exceeds the cleaned\n"
      "vocabulary (misspellings/aliases/doses), as in FAERS.\n");
  return 0;
}
