// Regenerates Fig. 5.2: the user-study accuracy of identifying the most
// interesting drug interaction with Contextual Glyphs vs. bar charts, for
// 2-, 3- and 4-drug clusters. The 50 WPI students are replaced by the
// perceptual simulator documented in study/user_study.h; the shape to
// reproduce is CG > bar chart at every size, with the bar chart degrading as
// the number of bars to integrate grows.

#include <cstdio>

#include "bench/bench_util.h"
#include "study/user_study.h"
#include "util/stats.h"
#include "viz/barchart.h"

namespace {

// Paper Fig. 5.2 values (percent of users answering correctly with CG).
constexpr double kPaperGlyph[] = {71.0, 57.0, 86.0};  // 2, 3, 4 drugs

}  // namespace

int main() {
  using namespace maras;
  const double scale = bench::ScaleFromEnv();
  bench::PrintHeader("Fig. 5.2 — User study: Contextual Glyph vs Barchart");
  bench::PreparedQuarter prepared = bench::PrepareQuarter(1, scale);
  core::MarasAnalyzer analyzer(bench::DefaultAnalyzerOptions(scale));
  auto analysis = analyzer.Analyze(prepared.pre);
  MARAS_CHECK(analysis.ok()) << analysis.status().ToString();

  core::ExclusivenessOptions scoring;
  auto ranked = core::RankMcacs(
      analysis->mcacs, core::RankingMethod::kExclusivenessConfidence, scoring);
  auto questions =
      study::BuildQuestions(ranked, prepared.pre.items, /*decoys=*/3,
                            /*seed=*/bench::SeedFromEnv());
  std::printf("questions built from mined clusters: %zu\n", questions.size());
  for (const auto& q : questions) {
    std::printf("  %s (%zu candidates)\n", q.name.c_str(),
                q.candidates.size());
  }

  study::StudyConfig config;
  config.participants = 50;
  config.seed = bench::SeedFromEnv() + 1;
  study::UserStudySimulator simulator(config);
  study::StudyOutcome outcome = simulator.Run(questions);

  std::printf("\n%-10s | %-18s | %-18s | paper CG\n", "drugs",
              "Contextual Glyph", "Barchart");
  std::printf("-----------+--------------------+--------------------+---------\n");
  bool cg_wins_everywhere = true;
  bool any_size = false;
  for (size_t drugs = 2; drugs <= 4; ++drugs) {
    double glyph = outcome.AccuracyForSize(
                       drugs, study::VisualEncoding::kContextualGlyph) *
                   100.0;
    double bar =
        outcome.AccuracyForSize(drugs, study::VisualEncoding::kBarChart) *
        100.0;
    bool have = false;
    for (const auto& q : outcome.questions) have |= q.drugs_per_rule == drugs;
    if (!have) {
      std::printf("%-10zu | %-18s | %-18s | %5.0f%%\n", drugs, "n/a", "n/a",
                  kPaperGlyph[drugs - 2]);
      continue;
    }
    any_size = true;
    auto ci_g = maras::stats::WilsonInterval(
        static_cast<size_t>(glyph / 100.0 * 50.0 + 0.5), 50);
    auto ci_b = maras::stats::WilsonInterval(
        static_cast<size_t>(bar / 100.0 * 50.0 + 0.5), 50);
    std::printf("%-10zu | %4.0f%% [%2.0f, %3.0f] | %4.0f%% [%2.0f, %3.0f] | %5.0f%%\n",
                drugs, glyph, ci_g.lower * 100, ci_g.upper * 100, bar,
                ci_b.lower * 100, ci_b.upper * 100, kPaperGlyph[drugs - 2]);
    cg_wins_everywhere = cg_wins_everywhere && glyph >= bar;
  }

  std::printf("\nmodeled decision time per question: glyph %.1fs vs "
              "barchart %.1fs (the paper's participants were 'more faster' "
              "with CG)\n",
              outcome.MeanSeconds(study::VisualEncoding::kContextualGlyph),
              outcome.MeanSeconds(study::VisualEncoding::kBarChart));

  // Also render the figure itself as SVG.
  viz::BarChartOptions chart_options;
  chart_options.max_value = 100.0;
  chart_options.y_label = "% correct";
  chart_options.show_values = true;
  viz::BarChartRenderer renderer(chart_options);
  std::vector<viz::BarChartRenderer::Series> series(2);
  series[0].name = "Contextual Glyph";
  series[1].name = "Barchart";
  std::vector<std::string> categories;
  for (size_t drugs = 2; drugs <= 4; ++drugs) {
    categories.push_back(std::to_string(drugs) + " drugs");
    series[0].values.push_back(
        outcome.AccuracyForSize(drugs,
                                study::VisualEncoding::kContextualGlyph) *
        100.0);
    series[1].values.push_back(
        outcome.AccuracyForSize(drugs, study::VisualEncoding::kBarChart) *
        100.0);
  }
  auto doc = renderer.RenderGrouped(categories, series, "User study results");
  std::string out_path = "fig_5_2_user_study.svg";
  auto write = doc.WriteFile(out_path);
  std::printf("\nfigure written to %s (%s)\n", out_path.c_str(),
              write.ok() ? "ok" : write.ToString().c_str());

  bool ok = any_size && cg_wins_everywhere;
  std::printf("Paper shape (CG accuracy >= barchart at every size): %s\n",
              ok ? "REPRODUCED" : "NOT reproduced");
  return ok ? 0 : 1;
}
