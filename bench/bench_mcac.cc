// MCAC-construction micro-benchmarks: the per-target subset-support fan-out
// that dominates stage 4, measured on a dense synthetic corpus whose targets
// overlap heavily in drug subsets (the workload the concept lattice and the
// shared SubsetSupportCache exist for). Benchmarks cover the one-time
// lattice build, the enumeration baseline (every subset counted from the
// transaction database), the lattice-backed fan-out with a cold cache (one
// cache per pass, exactly BuildRankedStage's shape), and the hot-memo upper
// bound. `--bench_json` writes bench/baselines/BENCH_mcac.json; `--smoke` is
// the Release-mode result-hash gate: BuildRankedStage with the lattice must
// be byte-identical to the enumeration path at 1, 2, and 8 threads.

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"
#include "core/analysis_stages.h"
#include "core/analyzer.h"
#include "core/checkpoint.h"
#include "core/drug_adr_rule.h"
#include "core/mcac.h"
#include "core/ranking.h"
#include "mining/closed_itemsets.h"
#include "mining/concept_lattice.h"
#include "mining/item_dictionary.h"
#include "mining/itemset.h"
#include "mining/transaction_db.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/run_context.h"

namespace {

using namespace maras;

// Dense MCAC workload: kTargets sliding windows of kWindow drugs over a
// kDrugs-drug alphabet, each window reported kCopies times with its ADR, so
// adjacent targets share all subsets of their (kWindow − 1)-drug overlap —
// the cross-target reuse the shared cache memoizes. Singleton noise reports
// fatten every database scan the enumeration baseline pays without growing
// the closed family beyond {drug, adr} pairs.
constexpr size_t kDrugs = 30;
constexpr size_t kWindow = 6;
constexpr size_t kTargets = kDrugs - kWindow + 1;  // 25
constexpr size_t kCopies = 8;
constexpr size_t kNoiseReports = 12000;
constexpr size_t kAdrs = 4;  // targets all share adr 0; noise spreads over 4

struct Fixture {
  mining::ItemDictionary items;
  mining::TransactionDatabase db;
  std::vector<core::DrugAdrRule> targets;
  mining::FrequentItemsetResult closed;
  mining::ConceptLattice lattice;
};

Fixture MakeFixture() {
  Fixture fixture;
  std::vector<mining::ItemId> drugs;
  std::vector<mining::ItemId> adrs;
  for (size_t d = 0; d < kDrugs; ++d) {
    auto id = fixture.items.Intern("DRUG" + std::to_string(d),
                                   mining::ItemDomain::kDrug);
    MARAS_CHECK(id.ok());
    drugs.push_back(*id);
  }
  for (size_t a = 0; a < kAdrs; ++a) {
    auto id = fixture.items.Intern("ADE" + std::to_string(a),
                                   mining::ItemDomain::kAdr);
    MARAS_CHECK(id.ok());
    adrs.push_back(*id);
  }

  std::vector<mining::Itemset> wholes;
  for (size_t t = 0; t < kTargets; ++t) {
    mining::Itemset txn;
    for (size_t i = 0; i < kWindow; ++i) txn.push_back(drugs[t + i]);
    txn.push_back(adrs[0]);
    txn = mining::MakeItemset(std::move(txn));
    for (size_t c = 0; c < kCopies; ++c) fixture.db.Add(txn);
    wholes.push_back(std::move(txn));
  }
  Rng rng(97);
  for (size_t r = 0; r < kNoiseReports; ++r) {
    mining::Itemset txn{drugs[rng.Uniform(kDrugs)],
                        adrs[rng.Uniform(kAdrs)]};
    fixture.db.Add(mining::MakeItemset(std::move(txn)));
  }

  for (const mining::Itemset& whole : wholes) {
    auto rule = core::BuildRule(whole, fixture.items, fixture.db);
    MARAS_CHECK(rule.ok()) << rule.status().ToString();
    fixture.targets.push_back(*std::move(rule));
  }

  // Uncapped mine: the descent exactness precondition holds for free.
  mining::MiningOptions options{.min_support = 4,
                                .max_itemset_size = 0,
                                .num_threads = 4};
  auto closed = mining::MineClosed(fixture.db, options);
  MARAS_CHECK(closed.ok()) << closed.status().ToString();
  fixture.closed = *std::move(closed);

  const RunContext ctx;
  auto lattice =
      mining::ConceptLattice::Build(fixture.closed, /*num_threads=*/4, ctx);
  MARAS_CHECK(lattice.ok()) << lattice.status().ToString();
  fixture.lattice = *std::move(lattice);
  return fixture;
}

const Fixture& SharedFixture() {
  static const Fixture* fixture = new Fixture(MakeFixture());
  return *fixture;
}

size_t BuildAll(const core::McacBuilder& builder,
                const std::vector<core::DrugAdrRule>& targets) {
  size_t context_rules = 0;
  for (const core::DrugAdrRule& target : targets) {
    auto mcac = builder.Build(target);
    MARAS_CHECK(mcac.ok()) << mcac.status().ToString();
    context_rules += mcac->ContextSize();
  }
  return context_rules;
}

// One-time cost of stage 3.5: nodes + covering edges over the closed family.
void BM_LatticeBuild(benchmark::State& state) {
  const Fixture& fixture = SharedFixture();
  const RunContext ctx;
  const auto threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto lattice = mining::ConceptLattice::Build(fixture.closed, threads, ctx);
    MARAS_CHECK(lattice.ok());
    benchmark::DoNotOptimize(lattice);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["nodes"] = static_cast<double>(fixture.lattice.node_count());
  state.counters["edges"] = static_cast<double>(fixture.lattice.edge_count());
  state.counters["arena_bytes"] =
      static_cast<double>(fixture.lattice.MemoryFootprint());
}
BENCHMARK(BM_LatticeBuild)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Enumeration baseline: every subset support is a full database scan.
void BM_McacEnumeration(benchmark::State& state) {
  const Fixture& fixture = SharedFixture();
  const core::McacBuilder builder(&fixture.items, &fixture.db);
  size_t context_rules = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(context_rules =
                                 BuildAll(builder, fixture.targets));
  }
  state.counters["context_rules"] = static_cast<double>(context_rules);
  state.counters["targets_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kTargets),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_McacEnumeration)->Unit(benchmark::kMillisecond);

// The production shape (BuildRankedStage): one shared cache per fan-out
// pass, subset supports resolved as memoized lattice descents.
void BM_McacLatticeColdCache(benchmark::State& state) {
  const Fixture& fixture = SharedFixture();
  size_t context_rules = 0;
  uint64_t hits = 0, misses = 0, fallbacks = 0;
  for (auto _ : state) {
    mining::SubsetSupportCache cache(&fixture.db);
    const core::McacBuilder builder(&fixture.items, &fixture.db,
                                    &fixture.lattice, &cache);
    benchmark::DoNotOptimize(context_rules =
                                 BuildAll(builder, fixture.targets));
    hits = cache.hits();
    misses = cache.misses();
    fallbacks = cache.fallbacks();
  }
  state.counters["context_rules"] = static_cast<double>(context_rules);
  state.counters["cache_hit_rate"] =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  state.counters["cache_fallbacks"] = static_cast<double>(fallbacks);
  state.counters["targets_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kTargets),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_McacLatticeColdCache)->Unit(benchmark::kMillisecond);

// Hot-memo upper bound: the cache outlives iterations, so steady state is
// all hits — what repeated targets (multi-quarter reruns) approach.
void BM_McacLatticeHotCache(benchmark::State& state) {
  const Fixture& fixture = SharedFixture();
  mining::SubsetSupportCache cache(&fixture.db);
  const core::McacBuilder builder(&fixture.items, &fixture.db,
                                  &fixture.lattice, &cache);
  size_t context_rules = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(context_rules =
                                 BuildAll(builder, fixture.targets));
  }
  const uint64_t hits = cache.hits();
  const uint64_t misses = cache.misses();
  state.counters["context_rules"] = static_cast<double>(context_rules);
  state.counters["cache_hit_rate"] =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  state.counters["targets_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kTargets),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_McacLatticeHotCache)->Unit(benchmark::kMillisecond);

// Release-mode byte-identity gate (the bench-smoke ctest label): the
// lattice-backed stage must reproduce the enumeration bytes exactly, at
// every thread count, and cold-vs-lattice timing is printed so the speedup
// the baseline JSON records is visible in the smoke log too.
bool RunSmoke() {
  const Fixture& fixture = SharedFixture();
  const RunContext ctx;
  bool ok = true;

  core::AnalyzerOptions options;
  options.mining.min_support = 4;
  options.mining.max_itemset_size = 0;

  std::string want;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    options.mining.num_threads = threads;
    auto plain = core::BuildRankedStage(
        fixture.targets, fixture.items, fixture.db,
        core::RankingMethod::kExclusivenessLift, options, ctx,
        /*lattice=*/nullptr);
    MARAS_CHECK(plain.ok()) << plain.status().ToString();
    auto latticed = core::BuildRankedStage(
        fixture.targets, fixture.items, fixture.db,
        core::RankingMethod::kExclusivenessLift, options, ctx,
        &fixture.lattice);
    MARAS_CHECK(latticed.ok()) << latticed.status().ToString();
    const std::string plain_bytes = core::EncodeRankedMcacs(*plain);
    const std::string lattice_bytes = core::EncodeRankedMcacs(*latticed);
    std::printf("smoke: enumeration  result-hash %016llx (threads=%zu)\n",
                static_cast<unsigned long long>(core::Fnv1a64(plain_bytes)),
                threads);
    std::printf("smoke: lattice      result-hash %016llx (threads=%zu)\n",
                static_cast<unsigned long long>(core::Fnv1a64(lattice_bytes)),
                threads);
    if (want.empty()) want = plain_bytes;
    if (plain_bytes != want || lattice_bytes != want) {
      std::fprintf(stderr,
                   "smoke: lattice/enumeration bytes diverge at %zu threads\n",
                   threads);
      ok = false;
    }
  }

  // Informational timing: single-threaded fan-out, enumeration vs lattice.
  const auto time_pass = [&](const core::McacBuilder& builder) {
    const auto start = std::chrono::steady_clock::now();
    const size_t rules = BuildAll(builder, fixture.targets);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    MARAS_CHECK(rules > 0);
    return std::chrono::duration<double, std::milli>(elapsed).count();
  };
  const core::McacBuilder plain_builder(&fixture.items, &fixture.db);
  mining::SubsetSupportCache cache(&fixture.db);
  const core::McacBuilder lattice_builder(&fixture.items, &fixture.db,
                                          &fixture.lattice, &cache);
  const double enum_ms = time_pass(plain_builder);
  const double lattice_ms = time_pass(lattice_builder);
  const uint64_t probes = cache.hits() + cache.misses();
  std::printf(
      "smoke: fan-out over %zu targets: enumeration %.2f ms, lattice %.2f ms "
      "(%.1fx), cache hit rate %.2f\n",
      fixture.targets.size(), enum_ms, lattice_ms,
      lattice_ms > 0 ? enum_ms / lattice_ms : 0.0,
      probes == 0 ? 0.0
                  : static_cast<double>(cache.hits()) /
                        static_cast<double>(probes));

  if (!ok) std::fprintf(stderr, "smoke: RESULT HASH MISMATCH\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  maras::bench::BenchMainOptions options =
      maras::bench::ParseBenchArgs(argc, argv, "BENCH_mcac.json");
  if (options.smoke) return RunSmoke() ? 0 : 1;
  return maras::bench::RunBenchmarksToJson(std::move(options), "bench_mcac");
}
