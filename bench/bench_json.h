#ifndef MARAS_BENCH_BENCH_JSON_H_
#define MARAS_BENCH_BENCH_JSON_H_

// Machine-readable output for the mining micro-benchmarks. Each bench binary
// runs google-benchmark as usual for the console, collects every run through
// the reporter below, and writes one JSON document (wall-clock per run,
// per-iteration allocation counters, thread counts, peak RSS) so successive
// PRs have a perf trajectory to diff — see bench/baselines/.
//
// Also home of the tiny-fixture "smoke" helpers: `--smoke` runs the miners
// on a fixed small database and fails on any result-hash disagreement, which
// ctest wires up under the `bench-smoke` label (a Release-mode guard that
// the perf-oriented code paths still produce byte-identical results).

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "mining/frequent_itemsets.h"
#include "util/delimited.h"
#include "util/json.h"

namespace maras::bench {

// One benchmark run, flattened to what the trajectory needs.
struct BenchRunRecord {
  std::string name;
  double real_time = 0.0;  // in `time_unit`
  std::string time_unit;
  int64_t iterations = 0;
  std::map<std::string, double> counters;
};

// Collects every run while delegating display to the stock console
// reporter (google-benchmark only accepts a separate file reporter when
// --benchmark_out is set, so we wrap instead of running two reporters).
class JsonCollector : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    benchmark::ConsoleReporter::ReportRuns(report);
    for (const Run& run : report) {
      BenchRunRecord record;
      record.name = run.benchmark_name();
      record.real_time = run.GetAdjustedRealTime();
      record.time_unit = benchmark::GetTimeUnitString(run.time_unit);
      record.iterations = run.iterations;
      for (const auto& [key, counter] : run.counters) {
        record.counters[key] = static_cast<double>(counter);
      }
      runs_.push_back(std::move(record));
    }
  }

  const std::vector<BenchRunRecord>& runs() const { return runs_; }

 private:
  std::vector<BenchRunRecord> runs_;
};

// Serializes the collected runs (sorted object keys, pretty-printed) to
// `path`. Returns false when the file cannot be written.
inline bool WriteBenchJson(const std::string& path,
                           const std::string& bench_name,
                           const std::vector<BenchRunRecord>& runs) {
  json::Value::Array run_values;
  for (const BenchRunRecord& record : runs) {
    json::Value::Object counters;
    for (const auto& [key, value] : record.counters) {
      counters[key] = json::Value(value);
    }
    json::Value::Object entry;
    entry["name"] = json::Value(record.name);
    entry["real_time"] = json::Value(record.real_time);
    entry["time_unit"] = json::Value(record.time_unit);
    entry["iterations"] = json::Value(static_cast<double>(record.iterations));
    entry["counters"] = json::Value(std::move(counters));
    run_values.push_back(json::Value(std::move(entry)));
  }
  json::Value::Object doc;
  doc["bench"] = json::Value(bench_name);
  doc["hardware_threads"] =
      json::Value(static_cast<double>(std::thread::hardware_concurrency()));
  doc["peak_rss_bytes"] = json::Value(static_cast<double>(PeakRssBytes()));
  doc["runs"] = json::Value(std::move(run_values));
  return AtomicWriteStringToFile(
             path,
             json::Serialize(json::Value(std::move(doc)), /*pretty=*/true) +
                 "\n")
      .ok();
}

// FNV-1a over the canonical (itemset, support) sequence: two mining passes
// hash equal iff their results are byte-identical in canonical order.
inline uint64_t ResultHash(const mining::FrequentItemsetResult& result) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const mining::FrequentItemset& fi : result.itemsets()) {
    mix(fi.items.size());
    for (mining::ItemId id : fi.items) mix(id);
    mix(fi.support);
  }
  return h;
}

// Shared argv plumbing: strips --smoke / --bench_json=PATH before
// google-benchmark sees them. MARAS_BENCH_JSON overrides the default path.
struct BenchMainOptions {
  bool smoke = false;
  std::string json_path;
  std::vector<char*> argv;  // remaining args, argv[0] first
};

inline BenchMainOptions ParseBenchArgs(int argc, char** argv,
                                       const std::string& default_json) {
  BenchMainOptions options;
  options.json_path = default_json;
  if (const char* env = std::getenv("MARAS_BENCH_JSON")) {
    options.json_path = env;
  }
  const std::string json_flag = "--bench_json=";
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg.rfind(json_flag, 0) == 0) {
      options.json_path = arg.substr(json_flag.size());
    } else {
      options.argv.push_back(argv[i]);
    }
  }
  return options;
}

// Runs google-benchmark and writes the JSON trajectory file. Returns the
// process exit code.
inline int RunBenchmarksToJson(BenchMainOptions options,
                               const std::string& bench_name) {
  int argc = static_cast<int>(options.argv.size());
  benchmark::Initialize(&argc, options.argv.data());
  if (benchmark::ReportUnrecognizedArguments(argc, options.argv.data())) {
    return 1;
  }
  JsonCollector collector;
  benchmark::RunSpecifiedBenchmarks(&collector);
  benchmark::Shutdown();
  if (!WriteBenchJson(options.json_path, bench_name, collector.runs())) {
    std::fprintf(stderr, "failed to write %s\n", options.json_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu runs)\n", options.json_path.c_str(),
              collector.runs().size());
  return 0;
}

}  // namespace maras::bench

#endif  // MARAS_BENCH_BENCH_JSON_H_
