// Micro-benchmarks for the bitmap-Eclat engine: the scalar merge reference
// against the kernel-backed dense, sparse, and density-chosen modes, plus
// the parallel root fan-out, on the Zipf-skewed corpus shape the other
// mining benches use. The dense corpus (few items, long tid-lists) is the
// one the tentpole speedup claim is measured on: BENCH_eclat_bitmap.json's
// committed baseline shows the word-wise AND+popcount path beating the
// std::set_intersection merge by well over 2x there. `--smoke` mines a
// tiny fixture in every mode at 1/2/8 threads and fails on any result-hash
// disagreement — the bench-smoke gate that the fast paths stay exact.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/alloc_counter.h"
#include "bench/bench_json.h"
#include "mining/eclat.h"
#include "mining/fpgrowth.h"
#include "util/random.h"

namespace {

using namespace maras;
using namespace maras::mining;

// Zipf-skewed corpus; small `items` with a long mean length yields the
// dense tid-lists where bitmaps pay off, large `items` the sparse tail.
TransactionDatabase MakeDb(size_t transactions, size_t items,
                           double mean_len, uint64_t seed) {
  Rng rng(seed);
  ZipfTable zipf(items, 1.05);
  TransactionDatabase db;
  for (size_t t = 0; t < transactions; ++t) {
    Itemset txn;
    size_t len = 1 + static_cast<size_t>(rng.Poisson(mean_len));
    for (size_t i = 0; i < len; ++i) {
      txn.push_back(static_cast<ItemId>(zipf.Sample(&rng)));
    }
    db.Add(std::move(txn));
  }
  return db;
}

// The dense corpus every mode variant below mines: 90 items over 8000
// reports, so frequent items cover several percent of the universe each.
TransactionDatabase DenseDb() { return MakeDb(8000, 90, 6.0, 7); }

void RunEclat(benchmark::State& state, const TransactionDatabase& db,
              EclatMode mode, size_t threads) {
  MiningOptions options{.min_support = static_cast<size_t>(state.range(0)),
                        .max_itemset_size = 5};
  options.eclat_mode = mode;
  options.num_threads = threads;
  Eclat miner(options);
  size_t found = 0;
  const auto alloc0 = bench::CurrentAllocCounts();
  for (auto _ : state) {
    auto result = miner.Mine(db);
    benchmark::DoNotOptimize(found = result->size());
  }
  bench::SetAllocCounters(state, alloc0);
  state.counters["itemsets"] = static_cast<double>(found);
}

void BM_EclatScalarDense(benchmark::State& state) {
  TransactionDatabase db = DenseDb();
  RunEclat(state, db, EclatMode::kScalar, 1);
}
BENCHMARK(BM_EclatScalarDense)->Arg(40)->Arg(160)->Unit(benchmark::kMillisecond);

void BM_EclatBitmapDense(benchmark::State& state) {
  TransactionDatabase db = DenseDb();
  RunEclat(state, db, EclatMode::kDense, 1);
}
BENCHMARK(BM_EclatBitmapDense)->Arg(40)->Arg(160)->Unit(benchmark::kMillisecond);

void BM_EclatBitmapAuto(benchmark::State& state) {
  TransactionDatabase db = DenseDb();
  RunEclat(state, db, EclatMode::kAuto, 1);
}
BENCHMARK(BM_EclatBitmapAuto)->Arg(40)->Arg(160)->Unit(benchmark::kMillisecond);

void BM_EclatBitmapAutoThreads(benchmark::State& state) {
  TransactionDatabase db = DenseDb();
  RunEclat(state, db, EclatMode::kAuto,
           static_cast<size_t>(state.range(1)));
}
BENCHMARK(BM_EclatBitmapAutoThreads)
    ->Args({40, 2})
    ->Args({40, 4})
    ->Unit(benchmark::kMillisecond);

// Sparse regime: a wide 2000-item universe where most tid-lists sit far
// below the density crossover, so kAuto should track kSparse (galloping),
// not the bitmap path.
void BM_EclatSparseCorpus(benchmark::State& state) {
  TransactionDatabase db = MakeDb(8000, 2000, 4.0, 7);
  RunEclat(state, db, static_cast<EclatMode>(state.range(1)), 1);
}
BENCHMARK(BM_EclatSparseCorpus)
    ->Args({20, static_cast<int>(EclatMode::kScalar)})
    ->Args({20, static_cast<int>(EclatMode::kAuto)})
    ->Args({20, static_cast<int>(EclatMode::kSparse)})
    ->Unit(benchmark::kMillisecond);

// Every mode, every thread count, one tiny fixture: the canonical result
// hash must never move. Also cross-checked against FP-Growth so the whole
// family is anchored to an independent algorithm.
bool RunSmoke() {
  TransactionDatabase db = MakeDb(600, 60, 3.0, 13);
  MiningOptions base{.min_support = 3, .max_itemset_size = 5};
  auto anchor = FpGrowth(base).Mine(db);
  if (!anchor.ok()) {
    std::fprintf(stderr, "smoke: fp-growth failed: %s\n",
                 anchor.status().ToString().c_str());
    return false;
  }
  const uint64_t expected = bench::ResultHash(*anchor);
  std::printf("smoke: fp-growth       result-hash %016llx\n",
              static_cast<unsigned long long>(expected));
  bool ok = true;
  const struct {
    const char* name;
    EclatMode mode;
  } kModes[] = {{"eclat-scalar", EclatMode::kScalar},
                {"eclat-auto", EclatMode::kAuto},
                {"eclat-dense", EclatMode::kDense},
                {"eclat-sparse", EclatMode::kSparse}};
  for (const auto& entry : kModes) {
    for (size_t threads : {1u, 2u, 8u}) {
      MiningOptions options = base;
      options.eclat_mode = entry.mode;
      options.num_threads = threads;
      auto mined = Eclat(options).Mine(db);
      if (!mined.ok()) {
        std::fprintf(stderr, "smoke: %s failed: %s\n", entry.name,
                     mined.status().ToString().c_str());
        return false;
      }
      const uint64_t hash = bench::ResultHash(*mined);
      std::printf("smoke: %-12s x%zu result-hash %016llx\n", entry.name,
                  threads, static_cast<unsigned long long>(hash));
      if (hash != expected) ok = false;
    }
  }
  if (!ok) std::fprintf(stderr, "smoke: RESULT HASH MISMATCH\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  maras::bench::BenchMainOptions options =
      maras::bench::ParseBenchArgs(argc, argv, "BENCH_eclat_bitmap.json");
  if (options.smoke) return RunSmoke() ? 0 : 1;
  return maras::bench::RunBenchmarksToJson(std::move(options),
                                           "bench_eclat_bitmap");
}
