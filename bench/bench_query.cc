// Serving-path micro-benchmarks: queries/sec against a validated
// SignalSnapshot through the QueryEngine — top-k, name→postings lookups,
// drill-down to report ids, full signal materialization — plus the cost of
// opening (and therefore fully re-validating) a snapshot file, which is
// what every SnapshotStore::Refresh pays per candidate generation.
// `--bench_json` writes the perf trajectory (bench/baselines/
// BENCH_query.json); `--smoke` is the Release-mode result-hash gate: the
// snapshot's materialized answers must be byte-identical to the in-memory
// analyzer ranking they were built from, the decode→re-encode round trip
// must reproduce the image bit-for-bit, and the postings must agree with a
// brute-force scan over the ranked targets.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"
#include "core/analyzer.h"
#include "core/checkpoint.h"
#include "core/ranking.h"
#include "faers/generator.h"
#include "faers/preprocess.h"
#include "serve/query_engine.h"
#include "serve/snapshot_reader.h"
#include "serve/snapshot_writer.h"
#include "util/delimited.h"
#include "util/logging.h"

namespace {

using namespace maras;

// One analyzed synthetic quarter plus its published snapshot image. Built
// once per fixture size and shared across benchmarks (static local).
struct Fixture {
  faers::PreprocessResult pre;
  std::vector<core::RankedMcac> ranked;
  std::string image;
  std::shared_ptr<const serve::SignalSnapshot> snapshot;
  std::unique_ptr<serve::QueryEngine> engine;
  std::vector<std::string> drug_names;  // every drug named by some target
};

Fixture MakeFixture(size_t reports) {
  faers::GeneratorConfig config;
  config.n_reports = reports;
  config.n_drugs = 600;
  config.n_adrs = 250;
  config.seed = 17;
  faers::SyntheticGenerator generator(config);
  auto dataset = generator.Generate();
  MARAS_CHECK(dataset.ok()) << dataset.status().ToString();
  faers::Preprocessor preprocessor{faers::PreprocessOptions{}};
  auto pre = preprocessor.Process(*dataset);
  MARAS_CHECK(pre.ok()) << pre.status().ToString();

  core::AnalyzerOptions options;
  options.mining.min_support = 6;
  options.mining.max_itemset_size = 7;
  core::MarasAnalyzer analyzer(options);
  auto analysis = analyzer.Analyze(*pre);
  MARAS_CHECK(analysis.ok()) << analysis.status().ToString();

  Fixture fixture;
  fixture.ranked = core::RankMcacs(analysis->mcacs,
                                   core::RankingMethod::kExclusivenessLift,
                                   core::ExclusivenessOptions{});
  fixture.pre = *std::move(pre);

  serve::SnapshotInputs inputs;
  inputs.items = &fixture.pre.items;
  inputs.signals = &fixture.ranked;
  inputs.stats = analysis->stats;
  inputs.db = &fixture.pre.transactions;
  inputs.primary_ids = &fixture.pre.primary_ids;
  auto image = serve::EncodeSignalSnapshot(inputs);
  MARAS_CHECK(image.ok()) << image.status().ToString();
  fixture.image = *std::move(image);

  auto snapshot = serve::SignalSnapshot::FromBytes(fixture.image);
  MARAS_CHECK(snapshot.ok()) << snapshot.status().ToString();
  fixture.snapshot =
      std::make_shared<const serve::SignalSnapshot>(std::move(*snapshot));
  auto engine = serve::QueryEngine::Create(fixture.snapshot);
  MARAS_CHECK(engine.ok()) << engine.status().ToString();
  fixture.engine =
      std::make_unique<serve::QueryEngine>(std::move(*engine));

  for (const core::RankedMcac& entry : fixture.ranked) {
    for (auto id : entry.mcac.target.drugs) {
      fixture.drug_names.push_back(
          std::string(fixture.pre.items.Name(id)));
    }
  }
  MARAS_CHECK(!fixture.drug_names.empty());
  return fixture;
}

const Fixture& SharedFixture() {
  static const Fixture* fixture = new Fixture(MakeFixture(4000));
  return *fixture;
}

void BM_TopK(benchmark::State& state) {
  const Fixture& fixture = SharedFixture();
  const auto k = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.engine->TopK(k));
  }
  state.counters["signals"] =
      static_cast<double>(fixture.snapshot->counts().signals);
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TopK)->Arg(10)->Arg(100);

void BM_SignalsForDrug(benchmark::State& state) {
  const Fixture& fixture = SharedFixture();
  size_t i = 0;
  for (auto _ : state) {
    const std::string& name =
        fixture.drug_names[i++ % fixture.drug_names.size()];
    auto signals = fixture.engine->SignalsForDrug(name);
    MARAS_CHECK(signals.ok());
    benchmark::DoNotOptimize(signals);
  }
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SignalsForDrug);

void BM_DrillDown(benchmark::State& state) {
  const Fixture& fixture = SharedFixture();
  const uint32_t n = fixture.snapshot->counts().signals;
  uint32_t i = 0;
  for (auto _ : state) {
    auto reports = fixture.engine->SupportingReportIds(i++ % n);
    MARAS_CHECK(reports.ok());
    benchmark::DoNotOptimize(reports);
  }
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DrillDown);

void BM_Materialize(benchmark::State& state) {
  const Fixture& fixture = SharedFixture();
  const uint32_t n = fixture.snapshot->counts().signals;
  uint32_t i = 0;
  for (auto _ : state) {
    auto ranked = fixture.engine->Materialize(i++ % n);
    MARAS_CHECK(ranked.ok());
    benchmark::DoNotOptimize(ranked);
  }
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Materialize);

// Full hostile-bytes validation pass over the image — the per-candidate
// cost of SnapshotStore::Refresh/fallback.
void BM_ValidateImage(benchmark::State& state) {
  const Fixture& fixture = SharedFixture();
  for (auto _ : state) {
    auto snapshot = serve::SignalSnapshot::FromView(fixture.image);
    MARAS_CHECK(snapshot.ok());
    benchmark::DoNotOptimize(snapshot);
  }
  state.counters["bytes"] = static_cast<double>(fixture.image.size());
}
BENCHMARK(BM_ValidateImage)->Unit(benchmark::kMicrosecond);

void BM_OpenFile(benchmark::State& state) {
  const Fixture& fixture = SharedFixture();
  const std::string path =
      (std::filesystem::temp_directory_path() / "bench_query.msnp").string();
  MARAS_CHECK(AtomicWriteStringToFile(path, fixture.image).ok());
  for (auto _ : state) {
    auto snapshot = serve::SignalSnapshot::OpenFile(path);
    MARAS_CHECK(snapshot.ok());
    benchmark::DoNotOptimize(snapshot);
  }
  state.counters["bytes"] = static_cast<double>(fixture.image.size());
}
BENCHMARK(BM_OpenFile)->Unit(benchmark::kMicrosecond);

// Release-mode byte-identity gate (the bench-smoke ctest label).
bool RunSmoke() {
  const Fixture& fixture = SharedFixture();
  bool ok = true;

  // 1) Materialized answers == the analyzer ranking, byte for byte.
  std::vector<core::RankedMcac> materialized;
  for (uint32_t i = 0; i < fixture.snapshot->counts().signals; ++i) {
    auto ranked = fixture.engine->Materialize(i);
    MARAS_CHECK(ranked.ok()) << ranked.status().ToString();
    materialized.push_back(*std::move(ranked));
  }
  const std::string from_snapshot = core::EncodeRankedMcacs(materialized);
  const std::string from_analyzer =
      core::EncodeRankedMcacs(fixture.ranked);
  std::printf("smoke: analyzer     result-hash %016llx (%zu signals)\n",
              static_cast<unsigned long long>(
                  core::Fnv1a64(from_analyzer)),
              fixture.ranked.size());
  std::printf("smoke: snapshot     result-hash %016llx\n",
              static_cast<unsigned long long>(
                  core::Fnv1a64(from_snapshot)));
  if (from_snapshot != from_analyzer) {
    std::fprintf(stderr, "smoke: snapshot answers diverge from analyzer\n");
    ok = false;
  }

  // 2) Decode -> re-encode reproduces the image bit-for-bit.
  auto reconstructed = serve::ReconstructInputs(*fixture.snapshot);
  MARAS_CHECK(reconstructed.ok()) << reconstructed.status().ToString();
  serve::SnapshotInputs inputs;
  inputs.items = &reconstructed->items;
  inputs.signals = &reconstructed->signals;
  inputs.stats = reconstructed->stats;
  inputs.report_ids = &reconstructed->report_ids;
  inputs.include_lattice = reconstructed->include_lattice;
  auto reencoded = serve::EncodeSignalSnapshot(inputs);
  MARAS_CHECK(reencoded.ok()) << reencoded.status().ToString();
  std::printf("smoke: image        result-hash %016llx (%zu bytes)\n",
              static_cast<unsigned long long>(core::Fnv1a64(fixture.image)),
              fixture.image.size());
  if (*reencoded != fixture.image) {
    std::fprintf(stderr, "smoke: decode->re-encode is not bit-exact\n");
    ok = false;
  }

  // 3) Postings agree with a brute-force scan over the ranked targets.
  uint64_t postings_hash = 1469598103934665603ULL;
  for (const std::string& name : fixture.drug_names) {
    auto got = fixture.engine->SignalsForDrug(name);
    MARAS_CHECK(got.ok());
    auto id = fixture.pre.items.Lookup(name);
    MARAS_CHECK(id.ok());
    std::vector<uint32_t> expected;
    for (size_t s = 0; s < fixture.ranked.size(); ++s) {
      if (mining::Contains(fixture.ranked[s].mcac.target.drugs, *id)) {
        expected.push_back(static_cast<uint32_t>(s));
      }
    }
    if (*got != expected) {
      std::fprintf(stderr, "smoke: postings for [%s] diverge\n",
                   name.c_str());
      ok = false;
    }
    for (uint32_t s : *got) {
      postings_hash ^= s;
      postings_hash *= 1099511628211ULL;
    }
  }
  std::printf("smoke: postings     result-hash %016llx (%zu lookups)\n",
              static_cast<unsigned long long>(postings_hash),
              fixture.drug_names.size());

  if (!ok) std::fprintf(stderr, "smoke: RESULT HASH MISMATCH\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  maras::bench::BenchMainOptions options =
      maras::bench::ParseBenchArgs(argc, argv, "BENCH_query.json");
  if (options.smoke) return RunSmoke() ? 0 : 1;
  return maras::bench::RunBenchmarksToJson(std::move(options),
                                           "bench_query");
}
