#!/usr/bin/env bash
# Checks (never rewrites) formatting of the tracked C++ sources against the
# repo .clang-format. Exit codes: 0 clean, 1 violations, 77 skipped because
# clang-format is unavailable (ctest SKIP_RETURN_CODE), 2 usage.
set -u

root="${1:-.}"
cd "$root" || exit 2

fmt=""
for candidate in clang-format clang-format-19 clang-format-18 \
                 clang-format-17 clang-format-16 clang-format-15; do
  if command -v "$candidate" > /dev/null 2>&1; then
    fmt="$candidate"
    break
  fi
done
if [ -z "$fmt" ]; then
  echo "check_format: clang-format not found; skipping" >&2
  exit 77
fi

# Tracked sources only; lint testdata fixtures are style-exempt.
files=$(git ls-files 'src/*.h' 'src/*.cc' 'tests/*.h' 'tests/*.cc' \
                     'bench/*.h' 'bench/*.cc' 'examples/*.cpp' \
                     'fuzz/*.h' 'fuzz/*.cc' \
        | grep -v '^tools/lint/testdata/')
if [ -z "$files" ]; then
  echo "check_format: no files matched — refusing to vacuously pass" >&2
  exit 1
fi

status=0
# shellcheck disable=SC2086
for f in $files; do
  if ! "$fmt" --dry-run -Werror "$f" > /dev/null 2>&1; then
    echo "needs formatting: $f"
    status=1
  fi
done
if [ "$status" -eq 0 ]; then
  echo "check_format: $(echo "$files" | wc -l) file(s) clean under $fmt"
fi
exit $status
