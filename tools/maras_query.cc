// maras-query: the serving-path CLI. Builds signal snapshots from a FAERS
// ASCII quarter and answers queries against the crash-safe SnapshotStore —
// every answer comes off the validated, memory-mapped snapshot, never from
// re-running the analyzer.
//
//   $ maras-query build <store-dir> <faers-dir> <quarter> [min-support]
//   $ maras-query topk <store-dir> [k]
//   $ maras-query drug <store-dir> <NAME>
//   $ maras-query adr <store-dir> <NAME>
//   $ maras-query drilldown <store-dir> <rank>
//   $ maras-query validate <snapshot-file>
//   $ maras-query status <store-dir>
//   $ maras-query check <store-dir> <faers-dir> <quarter> [min-support]
//
// `build` publishes the next generation (atomic tmp+fsync+rename, CURRENT
// commit point). `validate` runs the full hostile-bytes validation pipeline
// over one file and reports the structured verdict. `status` prints the
// served generation plus the store's quarantine/fallback diagnostics.
// `check` re-runs the analyzer in memory and fails unless the snapshot's
// answers are byte-identical to it.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "core/checkpoint.h"
#include "core/ranking.h"
#include "faers/ascii_format.h"
#include "faers/preprocess.h"
#include "serve/query_engine.h"
#include "serve/snapshot_reader.h"
#include "serve/snapshot_store.h"
#include "text/normalizer.h"

using namespace maras;

namespace {

// One fixed analyzer configuration shared by `build` and `check`, so the
// byte-identity comparison is meaningful.
core::AnalyzerOptions AnalyzerConfig(size_t min_support) {
  core::AnalyzerOptions options;
  options.mining.min_support = min_support;
  options.mining.max_itemset_size = 7;
  return options;
}

struct Analyzed {
  faers::PreprocessResult pre;
  std::vector<core::RankedMcac> ranked;
  core::RuleSpaceStats stats;
};

StatusOr<Analyzed> AnalyzeQuarter(const std::string& faers_dir, int quarter,
                                  size_t min_support) {
  auto dataset = faers::ReadAsciiQuarterFromDir(faers_dir, 2014, quarter);
  MARAS_RETURN_IF_ERROR_CTX(dataset.status(), "load " + faers_dir);
  faers::Preprocessor preprocessor{faers::PreprocessOptions{}};
  auto pre = preprocessor.Process(*dataset);
  MARAS_RETURN_IF_ERROR_CTX(pre.status(), "preprocess");
  core::MarasAnalyzer analyzer(AnalyzerConfig(min_support));
  auto analysis = analyzer.Analyze(*pre);
  MARAS_RETURN_IF_ERROR_CTX(analysis.status(), "analyze");
  Analyzed out;
  out.ranked = core::RankMcacs(analysis->mcacs,
                               core::RankingMethod::kExclusivenessLift,
                               core::ExclusivenessOptions{});
  out.stats = analysis->stats;
  out.pre = *std::move(pre);
  return out;
}

serve::SnapshotStore::Options StoreOptions(const std::string& dir) {
  serve::SnapshotStore::Options options;
  options.dir = dir;
  return options;
}

// Acquires the committed snapshot and prints any fallback diagnostics the
// resolution produced, so a quarantine never happens silently.
StatusOr<serve::QueryEngine> OpenEngine(const std::string& dir) {
  serve::SnapshotStore store(StoreOptions(dir));
  auto snapshot = store.Acquire();
  for (const std::string& line : store.diagnostics()) {
    std::fprintf(stderr, "store: %s\n", line.c_str());
  }
  MARAS_RETURN_IF_ERROR_CTX(snapshot.status(), "open store " + dir);
  std::fprintf(stderr, "serving generation %llu\n",
               static_cast<unsigned long long>(store.current_generation()));
  return serve::QueryEngine::Create(*snapshot);
}

void PrintSignal(const serve::QueryEngine& engine, uint32_t index) {
  serve::SignalRecord record;
  core::DrugAdrRule target;
  Status status = engine.snapshot().Signal(index, &record);
  if (status.ok()) status = engine.snapshot().Rule(record.target_rule, &target);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return;
  }
  std::string drugs, adrs;
  for (uint32_t id : target.drugs) {
    std::string_view name;
    if (engine.snapshot().ItemName(id, &name).ok()) {
      if (!drugs.empty()) drugs += ", ";
      drugs += name;
    }
  }
  for (uint32_t id : target.adrs) {
    std::string_view name;
    if (engine.snapshot().ItemName(id, &name).ok()) {
      if (!adrs.empty()) adrs += ", ";
      adrs += name;
    }
  }
  std::printf("%4u. [%s] => [%s]  supp=%zu conf=%.3f score=%.4f "
              "reports=%u levels=%u\n",
              index + 1, drugs.c_str(), adrs.c_str(), target.support,
              target.confidence, record.score, record.report_count,
              record.level_count);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

int CmdBuild(const std::string& store_dir, const std::string& faers_dir,
             int quarter, size_t min_support) {
  auto analyzed = AnalyzeQuarter(faers_dir, quarter, min_support);
  if (!analyzed.ok()) return Fail(analyzed.status());
  serve::SnapshotInputs inputs;
  inputs.items = &analyzed->pre.items;
  inputs.signals = &analyzed->ranked;
  inputs.stats = analyzed->stats;
  inputs.db = &analyzed->pre.transactions;
  inputs.primary_ids = &analyzed->pre.primary_ids;
  serve::SnapshotStore store(StoreOptions(store_dir));
  Status status = store.Publish(inputs);
  if (!status.ok()) return Fail(status);
  std::printf("published generation %llu: %zu signals from %zu reports\n",
              static_cast<unsigned long long>(store.current_generation()),
              analyzed->ranked.size(), analyzed->pre.transactions.size());
  return 0;
}

int CmdTopK(const std::string& store_dir, uint32_t k) {
  auto engine = OpenEngine(store_dir);
  if (!engine.ok()) return Fail(engine.status());
  for (uint32_t index : engine->TopK(k)) PrintSignal(*engine, index);
  return 0;
}

int CmdSearch(const std::string& store_dir, const std::string& raw,
              bool is_drug) {
  auto engine = OpenEngine(store_dir);
  if (!engine.ok()) return Fail(engine.status());
  const std::string name = text::NormalizeName(raw);
  auto signals = is_drug ? engine->SignalsForDrug(name)
                         : engine->SignalsForAdr(name);
  if (!signals.ok()) return Fail(signals.status());
  for (uint32_t index : *signals) PrintSignal(*engine, index);
  std::printf("%zu signals involve [%s]\n", signals->size(), name.c_str());
  return 0;
}

int CmdDrillDown(const std::string& store_dir, uint32_t rank) {
  auto engine = OpenEngine(store_dir);
  if (!engine.ok()) return Fail(engine.status());
  PrintSignal(*engine, rank);
  auto reports = engine->SupportingReportIds(rank);
  if (!reports.ok()) return Fail(reports.status());
  std::printf("  supporting reports (%zu):", reports->size());
  for (uint64_t id : *reports) {
    std::printf(" %llu", static_cast<unsigned long long>(id));
  }
  std::printf("\n");
  if (engine->HasLatticeNav()) {
    auto up = engine->Generalize(rank);
    if (!up.ok()) return Fail(up.status());
    std::printf("  generalizations (%zu signals, one covering step up):\n",
                up->size());
    for (uint32_t index : *up) PrintSignal(*engine, index);
    auto down = engine->Specialize(rank);
    if (!down.ok()) return Fail(down.status());
    std::printf("  specializations (%zu signals, one covering step down):\n",
                down->size());
    for (uint32_t index : *down) PrintSignal(*engine, index);
  }
  return 0;
}

int CmdValidate(const std::string& path) {
  auto snapshot = serve::SignalSnapshot::OpenFile(path);
  if (!snapshot.ok()) {
    std::printf("INVALID %s\n  %s\n", path.c_str(),
                snapshot.status().ToString().c_str());
    return 1;
  }
  const serve::SnapshotCounts& counts = snapshot->counts();
  std::printf("OK %s\n  signals=%u items=%u rules=%u levels=%u "
              "report-ids=%u lattice-edges=%u%s\n",
              path.c_str(), counts.signals, counts.items, counts.rules,
              counts.levels, counts.report_ids, counts.lattice_edges,
              snapshot->has_lattice_nav() ? "" : " (no lattice nav)");
  return 0;
}

int CmdStatus(const std::string& store_dir) {
  serve::SnapshotStore store(StoreOptions(store_dir));
  auto snapshot = store.Acquire();
  for (const std::string& line : store.diagnostics()) {
    std::printf("diagnostic: %s\n", line.c_str());
  }
  if (!snapshot.ok()) {
    std::printf("no servable generation: %s\n",
                snapshot.status().ToString().c_str());
    return 1;
  }
  std::printf("serving generation %llu (%u signals)\n",
              static_cast<unsigned long long>(store.current_generation()),
              (*snapshot)->counts().signals);
  return 0;
}

// Re-runs the analyzer and demands byte-identity between the snapshot's
// materialized answers and the in-memory ranking — the acceptance invariant
// of the serving path, checkable in production, not just in tests.
int CmdCheck(const std::string& store_dir, const std::string& faers_dir,
             int quarter, size_t min_support) {
  auto analyzed = AnalyzeQuarter(faers_dir, quarter, min_support);
  if (!analyzed.ok()) return Fail(analyzed.status());
  auto engine = OpenEngine(store_dir);
  if (!engine.ok()) return Fail(engine.status());
  std::vector<core::RankedMcac> materialized;
  const uint32_t n = engine->snapshot().counts().signals;
  for (uint32_t i = 0; i < n; ++i) {
    auto ranked = engine->Materialize(i);
    if (!ranked.ok()) return Fail(ranked.status());
    materialized.push_back(*std::move(ranked));
  }
  const std::string from_snapshot = core::EncodeRankedMcacs(materialized);
  const std::string from_analyzer = core::EncodeRankedMcacs(analyzed->ranked);
  if (from_snapshot != from_analyzer) {
    std::fprintf(stderr,
                 "MISMATCH: snapshot answers differ from the analyzer "
                 "(%zu vs %zu encoded bytes, %u vs %zu signals)\n",
                 from_snapshot.size(), from_analyzer.size(), n,
                 analyzed->ranked.size());
    return 1;
  }
  std::printf("byte-identical: %u signals, %zu encoded bytes\n", n,
              from_snapshot.size());
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <command> ...\n"
      "  build <store-dir> <faers-dir> <quarter> [min-support]\n"
      "  topk <store-dir> [k]\n"
      "  drug <store-dir> <NAME>\n"
      "  adr <store-dir> <NAME>\n"
      "  drilldown <store-dir> <rank>\n"
      "  validate <snapshot-file>\n"
      "  status <store-dir>\n"
      "  check <store-dir> <faers-dir> <quarter> [min-support]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const std::string command = argv[1];
  const std::string target = argv[2];
  if (command == "build" && argc >= 5) {
    return CmdBuild(target, argv[3], std::atoi(argv[4]),
                    argc > 5 ? static_cast<size_t>(std::atoll(argv[5])) : 6);
  }
  if (command == "topk") {
    return CmdTopK(target,
                   argc > 3 ? static_cast<uint32_t>(std::atoll(argv[3])) : 10);
  }
  if (command == "drug" && argc > 3) return CmdSearch(target, argv[3], true);
  if (command == "adr" && argc > 3) return CmdSearch(target, argv[3], false);
  if (command == "drilldown" && argc > 3) {
    return CmdDrillDown(target,
                        static_cast<uint32_t>(std::atoll(argv[3])) - 1);
  }
  if (command == "validate") return CmdValidate(target);
  if (command == "status") return CmdStatus(target);
  if (command == "check" && argc >= 5) {
    return CmdCheck(target, argv[3], std::atoi(argv[4]),
                    argc > 5 ? static_cast<size_t>(std::atoll(argv[5])) : 6);
  }
  return Usage(argv[0]);
}
