#!/usr/bin/env python3
"""maras-lint: project-invariant checks the compiler cannot express.

MARAS's correctness story rests on invariants that are documented in
DESIGN.md but, before this tool, enforced only by review: mining hot paths
use the flat arena tables instead of node-based hash containers, long
governed loops poll their RunContext, allocation stays inside the arena and
the counting allocator, headers keep a uniform guard style, and StatusOr
temporaries are never dereferenced unchecked. maras-lint turns each of
those into a machine-checked rule, run as a `lint`-labeled ctest.

Usage:
    maras_lint.py --root <repo-root> [--rule RULE ...] [paths...]
    maras_lint.py --list-rules

With no explicit paths the tracked source roots (src/, tests/, bench/,
examples/, fuzz/, tools/) are scanned; tools/lint/testdata is always
excluded because its fixtures deliberately violate the rules.

Suppression: a violating line (or the line directly above it) may carry
    // maras-lint: disable=<rule>[,<rule>...]
Every suppression should sit next to a comment justifying it; suppressions
are grep-able so the audit trail stays reviewable.

Exit status: 0 when clean, 1 when any violation fired, 2 on usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------

RULES = {
    "mining-flat-containers":
        "std::unordered_map/set in a src/mining hot-path file (use "
        "mining/flat_table.h or a dense ItemId table; apriori/maximal stay "
        "node-based as differential oracles by design)",
    "no-raw-new-delete":
        "raw new/delete expression outside bench/alloc_counter and the "
        "`static ... = new` leaky-singleton idiom",
    "runcontext-polling":
        "function takes a RunContext and loops but never polls "
        "Check()/Charge() or forwards the context",
    "header-guard":
        "include guard does not match the MARAS_<PATH>_H_ convention",
    "no-using-namespace-header":
        "`using namespace` at file or namespace scope in a header",
    "statusor-unchecked-deref":
        ".value() chained directly onto a call result (an unchecked "
        "temporary; bind the StatusOr, test ok(), then consume with "
        "std::move(x).value())",
    "no-raw-subprocess":
        "raw fork/exec*/system/popen outside src/util/subprocess.* (spawn "
        "through ChildProcess so EINTR/SIGPIPE/zombie hygiene is audited "
        "in one place)",
    "serve-validated-access":
        "reinterpret_cast, memcpy/memmove or data()-pointer arithmetic in "
        "src/serve outside the accessor layer (bounded_view/mapped_file); "
        "snapshot bytes are hostile and must be read through BoundedView",
    "mutex-annotations":
        "raw std::mutex/std::shared_mutex member outside src/util/ (use the "
        "capability-annotated maras::Mutex/SharedMutex wrappers), or a "
        "mutex member that no thread-safety annotation ever names "
        "(GUARDED_BY/REQUIRES/ACQUIRE/EXCLUDES...) — a lock outside the "
        "capability model is invisible to clang -Wthread-safety",
}

# Mining files that are on the hot path and must use flat (or dense
# ItemId-indexed) containers. Since the bitmap-kernel PR, eclat and
# transaction_db are hot paths too: eclat runs on the bitmap/tid-list
# kernels and transaction_db's vertical index is a flat ItemId-indexed
# array. The remaining files in src/mining (apriori, maximal,
# item_dictionary, profile) are reference oracles or build-time-only code
# and keep node-based containers for clarity.
MINING_HOT_FILES = {
    "fpgrowth.h", "fpgrowth.cc",
    "fptree.h", "fptree.cc",
    "closed_itemsets.h", "closed_itemsets.cc",
    "frequent_itemsets.h", "frequent_itemsets.cc",
    "itemset.h", "itemset.cc",
    "flat_table.h",
    "measures.h", "measures.cc",
    "rules.h", "rules.cc",
    "bitmap.h", "bitmap.cc",
    "concept_lattice.h", "concept_lattice.cc",
    "eclat.h", "eclat.cc",
    "transaction_db.h", "transaction_db.cc",
}

# Files allowed to spell raw new/delete: the counting global allocator
# must call the real allocation primitives.
NEW_DELETE_ALLOWED = {"bench/alloc_counter.cc", "bench/alloc_counter.h"}

# The one sanctioned home of raw process-control syscalls. Everyone else
# spawns through ChildProcess (util/subprocess.h).
SUBPROCESS_ALLOWED = {"src/util/subprocess.cc", "src/util/subprocess.h"}

# The serving path treats every snapshot byte as hostile; these are the
# only files allowed to touch raw memory — BoundedView's checked accessors
# and the mmap wrapper whose view() is the single cast point.
SERVE_RAW_ACCESS_ALLOWED = {
    "src/serve/bounded_view.h",
    "src/serve/mapped_file.h",
    "src/serve/mapped_file.cc",
}

# The capability-annotated wrapper layer itself: the one place a raw std
# mutex member may live (inside maras::Mutex/SharedMutex), and the one
# place a mutex member needs no GUARDED_BY user.
MUTEX_WRAPPER_ALLOWED = {
    "src/util/mutex.h",
    "src/util/thread_annotations.h",
}

SCAN_ROOTS = ("src", "tests", "bench", "examples", "fuzz", "tools")
EXCLUDE_PARTS = ("tools/lint/testdata",)

SOURCE_EXTS = (".h", ".cc", ".cpp")


@dataclass
class Violation:
    path: str
    line: int  # 1-based
    rule: str
    detail: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.detail}"


# ---------------------------------------------------------------------------
# Lexical helpers
# ---------------------------------------------------------------------------

_SUPPRESS_RE = re.compile(r"maras-lint:\s*disable=([A-Za-z0-9_,-]+)")


def suppressed_rules(lines: list[str]) -> list[set[str]]:
    """Per-line (0-based) set of suppressed rule names.

    A `maras-lint: disable=` comment suppresses its own line and the line
    below it, so the annotation can sit above the violating statement.
    """
    out: list[set[str]] = [set() for _ in lines]
    for i, line in enumerate(lines):
        m = _SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        out[i] |= rules
        if i + 1 < len(lines):
            out[i + 1] |= rules
    return out


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure.

    Replaced characters become spaces (newlines survive) so that line and
    column arithmetic on the stripped text maps back to the original.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c in "\"'":
            quote = c
            # Raw strings: R"delim( ... )delim"
            if quote == '"' and i > 0 and text[i - 1] == "R":
                m = re.match(r'R"([^(\s]{0,16})\(', text[i - 1:])
                if m:
                    delim = m.group(1)
                    end = text.find(")" + delim + '"', i)
                    if end == -1:
                        end = n
                    for j in range(i, min(end + len(delim) + 2, n)):
                        if text[j] != "\n":
                            out[j] = " "
                    i = min(end + len(delim) + 2, n)
                    continue
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    if text[i] != "\n":
                        out[i] = " "
                    i += 1
                    if i < n:
                        if text[i] != "\n":
                            out[i] = " "
                        i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


# ---------------------------------------------------------------------------
# Rules. Each takes (relpath, original text, stripped text) and yields
# (line, detail) pairs; suppression filtering happens in the driver.
# ---------------------------------------------------------------------------

_UNORDERED_RE = re.compile(r"\bstd\s*::\s*unordered_(?:map|set)\b")


def rule_mining_flat_containers(relpath, text, stripped):
    parts = relpath.replace(os.sep, "/").split("/")
    if parts[:2] != ["src", "mining"] or parts[-1] not in MINING_HOT_FILES:
        return
    for m in _UNORDERED_RE.finditer(stripped):
        yield (line_of(stripped, m.start()),
               "node-based hash container in a mining hot path; use "
               "mining/flat_table.h (FlatItemsetIndex/ItemsetFlatSet or a "
               "dense ItemId table)")


_NEW_RE = re.compile(r"\bnew\b")
_DELETE_RE = re.compile(r"\bdelete\b(\s*\[\s*\])?")
_DELETED_FN_RE = re.compile(r"=\s*delete\b")
_OPERATOR_NEW_DELETE_RE = re.compile(r"\boperator\s+(?:new|delete)\b")
_STATIC_SINGLETON_RE = re.compile(r"\bstatic\b[^;{]*=\s*new\b")


def rule_no_raw_new_delete(relpath, text, stripped):
    rel = relpath.replace(os.sep, "/")
    if rel in NEW_DELETE_ALLOWED:
        return
    if not rel.startswith(("src/", "bench/", "examples/", "fuzz/")):
        return
    lines = stripped.splitlines()
    for i, line in enumerate(lines, start=1):
        if _OPERATOR_NEW_DELETE_RE.search(line):
            yield (i, "operator new/delete replacement outside "
                      "bench/alloc_counter")
            continue
        for m in _NEW_RE.finditer(line):
            if _OPERATOR_NEW_DELETE_RE.search(line):
                break
            if _STATIC_SINGLETON_RE.search(line):
                # `static const auto* x = new ...` leaky singleton:
                # intentionally immortal, avoids destruction-order fiasco.
                break
            yield (i, "raw new expression; allocate through the arena or a "
                      "standard container")
            break
        for m in _DELETE_RE.finditer(line):
            before = line[:m.start()]
            if _DELETED_FN_RE.search(before + "delete"):
                continue  # `= delete;` deleted function, not an expression
            yield (i, "raw delete expression; owning containers or the "
                      "arena manage lifetime")
            break


_RUNCTX_PARAM_RE = re.compile(
    r"\(([^()]*\bRunContext\b[^()]*)\)\s*(?:const\s*)?\{")
_RUNCTX_NAME_RE = re.compile(r"RunContext\s*[&*]?\s*(\w+)")
_LOOP_RE = re.compile(r"\b(?:for|while)\s*\(")


def _function_bodies_with_runcontext(stripped):
    """Yields (body_start_offset, body_text, ctx_param_name)."""
    for m in _RUNCTX_PARAM_RE.finditer(stripped):
        params = m.group(1)
        name_m = _RUNCTX_NAME_RE.search(params)
        if not name_m:
            continue
        open_brace = m.end() - 1
        depth = 0
        i = open_brace
        n = len(stripped)
        while i < n:
            if stripped[i] == "{":
                depth += 1
            elif stripped[i] == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        yield open_brace, stripped[open_brace:i + 1], name_m.group(1)


def rule_runcontext_polling(relpath, text, stripped):
    rel = relpath.replace(os.sep, "/")
    if not rel.startswith("src/") or not rel.endswith((".cc", ".cpp")):
        return
    for start, body, ctx in _function_bodies_with_runcontext(stripped):
        if not _LOOP_RE.search(body):
            continue
        polls = re.search(
            r"\b{0}\s*[.-]>?\s*(?:Check|Charge)\s*\(".format(re.escape(ctx)),
            body)
        # Forwarding the context into a callee (which polls) also counts:
        # the context identifier appearing as a call argument.
        forwards = re.search(
            r"[(,]\s*&?\s*{0}\s*[,)]".format(re.escape(ctx)), body)
        if not polls and not forwards:
            yield (line_of(stripped, start),
                   f"function takes RunContext `{ctx}` and loops but never "
                   f"calls {ctx}.Check()/{ctx}.Charge() nor forwards it; "
                   "unbounded work must stay cancellable")


_GUARD_IF_RE = re.compile(r"^\s*#ifndef\s+(\w+)\s*$", re.M)
_GUARD_DEF_RE = re.compile(r"^\s*#define\s+(\w+)\s*$", re.M)
_PRAGMA_ONCE_RE = re.compile(r"^\s*#pragma\s+once\b", re.M)


def expected_guard(relpath):
    rel = relpath.replace(os.sep, "/")
    if rel.startswith("src/"):
        rel = rel[len("src/"):]
    stem = re.sub(r"[^A-Za-z0-9]", "_", rel).upper()
    return f"MARAS_{stem}_"


def rule_header_guard(relpath, text, stripped):
    if not relpath.endswith(".h"):
        return
    want = expected_guard(relpath)
    if _PRAGMA_ONCE_RE.search(stripped):
        yield (1, f"#pragma once; use the include-guard convention {want}")
        return
    m_if = _GUARD_IF_RE.search(stripped)
    m_def = _GUARD_DEF_RE.search(stripped)
    if not m_if or not m_def:
        yield (1, f"missing include guard {want}")
        return
    if m_if.group(1) != want or m_def.group(1) != want:
        yield (line_of(stripped, m_if.start()),
               f"include guard {m_if.group(1)} does not match convention "
               f"{want}")


_USING_NS_RE = re.compile(r"\busing\s+namespace\b")


def rule_no_using_namespace_header(relpath, text, stripped):
    if not relpath.endswith(".h"):
        return
    for m in _USING_NS_RE.finditer(stripped):
        yield (line_of(stripped, m.start()),
               "`using namespace` in a header leaks into every includer")


_CHAINED_VALUE_RE = re.compile(r"\)\s*\.\s*value\s*\(\s*\)")


def _callee_is_std_move(stripped, close_paren):
    """True when the call ending at `close_paren` is std::move(...)."""
    depth = 0
    i = close_paren
    while i >= 0:
        c = stripped[i]
        if c == ")":
            depth += 1
        elif c == "(":
            depth -= 1
            if depth == 0:
                break
        i -= 1
    if i <= 0:
        return False
    head = stripped[:i].rstrip()
    return bool(re.search(r"(?:\bstd\s*::\s*)?\bmove$", head))


def rule_statusor_unchecked_deref(relpath, text, stripped):
    for m in _CHAINED_VALUE_RE.finditer(stripped):
        if _callee_is_std_move(stripped, m.start()):
            continue  # std::move(x).value(): the checked-consume idiom
        yield (line_of(stripped, m.start()),
               "`.value()` on an unchecked call temporary; bind the "
               "StatusOr, branch on ok(), then std::move(x).value()")


_RAW_SUBPROCESS_RE = re.compile(
    r"\b(fork|vfork|execl|execlp|execle|execv|execvp|execvpe|execve|"
    r"system|popen|posix_spawn|posix_spawnp)\s*\(")


def rule_no_raw_subprocess(relpath, text, stripped):
    rel = relpath.replace(os.sep, "/")
    if rel in SUBPROCESS_ALLOWED:
        return
    for m in _RAW_SUBPROCESS_RE.finditer(stripped):
        # Member calls like `machine.fork(...)` are not the libc syscall.
        head = stripped[:m.start()].rstrip()
        if head.endswith((".", "->")):
            continue
        yield (line_of(stripped, m.start()),
               f"raw {m.group(1)}() call; process plumbing lives in "
               "util/subprocess.h (ChildProcess::Spawn) so EINTR, SIGPIPE "
               "and zombie handling are audited once")


_REINTERPRET_RE = re.compile(r"\breinterpret_cast\b")
_MEMCPY_RE = re.compile(r"\bmem(?:cpy|move)\s*\(")
_DATA_ARITH_RE = re.compile(r"\bdata\s*\(\s*\)\s*[+-](?![+-])")


def rule_serve_validated_access(relpath, text, stripped):
    rel = relpath.replace(os.sep, "/")
    if not rel.startswith("src/serve/") or rel in SERVE_RAW_ACCESS_ALLOWED:
        return
    for regex, what in ((_REINTERPRET_RE, "reinterpret_cast"),
                        (_MEMCPY_RE, "memcpy/memmove"),
                        (_DATA_ARITH_RE, "data()-pointer arithmetic")):
        for m in regex.finditer(stripped):
            yield (line_of(stripped, m.start()),
                   f"{what} outside the accessor layer; snapshot bytes are "
                   "hostile — go through BoundedView "
                   "(serve/bounded_view.h), the only sanctioned byte-access "
                   "surface")


_MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?"
    r"(?P<type>(?:maras\s*::\s*)?(?:Mutex|SharedMutex)\b"
    r"|std\s*::\s*(?:shared_|recursive_|timed_|recursive_timed_)?mutex\b)"
    r"\s+(?P<name>\w+)\s*(?:ACQUIRED_(?:BEFORE|AFTER)\s*\([^;]*\))?\s*;")
_CLASS_HEAD_RE = re.compile(r"\b(class|struct|union)\s+[A-Za-z_]\w*[^;{()]*$")
_NAMESPACE_HEAD_RE = re.compile(r"\bnamespace\b[^;{]*$")
_ENUM_HEAD_RE = re.compile(r"\benum\b[^;{]*$")


def _scope_kinds_per_line(stripped):
    """For each 0-based line, the innermost scope kind at line start.

    Kinds: "top", "namespace", "class", "block" (function bodies, loops,
    initializer lists...). A lexical approximation: each `{` is classified
    by the text preceding it — class/struct/union head, namespace head, or
    anything else (block). Good enough to tell a member declaration (inside
    a class body, outside any nested block) from a function-local one.
    """
    kinds = []
    stack = []
    i = 0
    line_start = 0
    n = len(stripped)
    kinds.append("top")
    for i in range(n):
        c = stripped[i]
        if c == "\n":
            kinds.append(stack[-1] if stack else "top")
            line_start = i + 1
        elif c == "{":
            head = stripped[max(0, i - 400):i].rstrip()
            if _CLASS_HEAD_RE.search(head):
                stack.append("class")
            elif _NAMESPACE_HEAD_RE.search(head):
                stack.append("namespace")
            elif _ENUM_HEAD_RE.search(head):
                stack.append("enum")
            else:
                stack.append("block")
        elif c == "}":
            if stack:
                stack.pop()
    del line_start
    return kinds


_ANNOTATION_USER_TEMPLATE = (
    r"\b(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED|ACQUIRE|"
    r"ACQUIRE_SHARED|RELEASE|RELEASE_SHARED|TRY_ACQUIRE|TRY_ACQUIRE_SHARED|"
    r"EXCLUDES|ACQUIRED_BEFORE|ACQUIRED_AFTER|ASSERT_CAPABILITY|"
    r"ASSERT_SHARED_CAPABILITY|RETURN_CAPABILITY)\s*\([^)]*\b{0}\b")


def rule_mutex_annotations(relpath, text, stripped):
    rel = relpath.replace(os.sep, "/")
    if not rel.startswith("src/") or rel in MUTEX_WRAPPER_ALLOWED:
        return
    lines = stripped.splitlines()
    scope = _scope_kinds_per_line(stripped)
    for i, line in enumerate(lines):
        if i < len(scope) and scope[i] != "class":
            continue  # function-local mutexes guard locals; members only
        m = _MUTEX_DECL_RE.match(line)
        if not m:
            continue
        mutex_type = re.sub(r"\s+", "", m.group("type"))
        name = m.group("name")
        if mutex_type.startswith("std::"):
            if not rel.startswith("src/util/"):
                yield (i + 1,
                       f"raw {mutex_type} member `{name}`; use the "
                       "capability-annotated maras::Mutex/SharedMutex "
                       "(util/mutex.h) so clang -Wthread-safety can check "
                       "lock discipline")
                continue
        if not re.search(_ANNOTATION_USER_TEMPLATE.format(re.escape(name)),
                         stripped):
            yield (i + 1,
                   f"mutex member `{name}` is never named by a "
                   "thread-safety annotation (GUARDED_BY/REQUIRES/"
                   "EXCLUDES...); a lock that guards nothing statically is "
                   "either dead or hiding unguarded state")


RULE_FUNCS = {
    "mining-flat-containers": rule_mining_flat_containers,
    "no-raw-new-delete": rule_no_raw_new_delete,
    "runcontext-polling": rule_runcontext_polling,
    "header-guard": rule_header_guard,
    "no-using-namespace-header": rule_no_using_namespace_header,
    "statusor-unchecked-deref": rule_statusor_unchecked_deref,
    "no-raw-subprocess": rule_no_raw_subprocess,
    "serve-validated-access": rule_serve_validated_access,
    "mutex-annotations": rule_mutex_annotations,
}

assert set(RULE_FUNCS) == set(RULES)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect_files(root, explicit_paths):
    files = []
    if explicit_paths:
        for p in explicit_paths:
            ap = p if os.path.isabs(p) else os.path.join(root, p)
            if os.path.isdir(ap):
                for dirpath, _dirnames, filenames in os.walk(ap):
                    for f in sorted(filenames):
                        if f.endswith(SOURCE_EXTS):
                            files.append(os.path.join(dirpath, f))
            elif ap.endswith(SOURCE_EXTS):
                files.append(ap)
        return files
    bases = [os.path.join(root, top) for top in SCAN_ROOTS
             if os.path.isdir(os.path.join(root, top))]
    # A root with none of the standard source roots (a fixture tree, an
    # arbitrary directory) is scanned wholesale.
    if not bases:
        bases = [root]
    for base in bases:
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for f in sorted(filenames):
                if f.endswith(SOURCE_EXTS):
                    files.append(os.path.join(dirpath, f))
    return files


def lint_file(root, path, active_rules):
    relpath = os.path.relpath(path, root)
    rel = relpath.replace(os.sep, "/")
    if any(part in rel for part in EXCLUDE_PARTS):
        return []
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    except OSError as e:
        return [Violation(rel, 1, "io", f"unreadable: {e}")]
    stripped = strip_comments_and_strings(text)
    suppress = suppressed_rules(text.splitlines())
    out = []
    for rule in active_rules:
        for line, detail in RULE_FUNCS[rule](relpath, text, stripped) or ():
            idx = line - 1
            if 0 <= idx < len(suppress) and rule in suppress[idx]:
                continue
            out.append(Violation(rel, line, rule, detail))
    return out


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--rule", action="append", dest="rules", metavar="RULE",
                    help="run only this rule (repeatable)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("paths", nargs="*",
                    help="files or directories to lint (default: the "
                         "tracked source roots)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            print(f"{name}: {RULES[name]}")
        return 0

    active = args.rules or sorted(RULES)
    unknown = [r for r in active if r not in RULES]
    if unknown:
        print(f"maras-lint: unknown rule(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    root = os.path.abspath(args.root)
    violations = []
    for path in collect_files(root, args.paths):
        violations.extend(lint_file(root, path, active))

    for v in violations:
        print(v.render())
    if violations:
        print(f"maras-lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
