// Fixture: violations annotated with maras-lint: disable — must stay quiet.
namespace maras::core {

int* Make() {
  // Transfer to a C API that frees with delete; audited 2026-08.
  // maras-lint: disable=no-raw-new-delete
  return new int(42);
}

void Destroy(int* p) {
  delete p;  // maras-lint: disable=no-raw-new-delete — C-API ownership
}

}  // namespace maras::core
