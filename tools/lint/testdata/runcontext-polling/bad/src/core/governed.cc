// Fixture: takes a RunContext, loops, never polls or forwards — must fire.
#include "util/run_context.h"
#include "util/status.h"

namespace maras::core {

void Step(int i);

maras::Status RunsAway(const maras::RunContext& ctx, int n) {
  for (int i = 0; i < n; ++i) {
    Step(i);
  }
  return maras::Status::OK();
}

}  // namespace maras::core
