// Fixture: governed loops that poll or forward the context — must stay
// quiet. Mirrors the closed_itemsets / rules polling idiom.
#include "util/run_context.h"
#include "util/status.h"

namespace maras::core {

maras::Status Worker(const maras::RunContext& ctx, int n);

// Polls Check() inside the loop.
maras::Status Polls(const maras::RunContext& ctx, int n) {
  for (int i = 0; i < n; ++i) {
    maras::Status poll = ctx.Check();
    if (!poll.ok()) return poll;
  }
  return maras::Status::OK();
}

// Forwards the context to a callee that polls.
maras::Status Forwards(const maras::RunContext& ctx, int n) {
  for (int i = 0; i < n; ++i) {
    maras::Status st = Worker(ctx, i);
    if (!st.ok()) return st;
  }
  return maras::Status::OK();
}

// No loop at all: nothing to poll.
maras::Status Straight(const maras::RunContext& ctx) { return ctx.Check(); }

}  // namespace maras::core
