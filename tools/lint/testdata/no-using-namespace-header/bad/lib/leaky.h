#ifndef MARAS_LIB_LEAKY_H_
#define MARAS_LIB_LEAKY_H_

// Fixture: using-directive in a header — must fire.
#include <string>

using namespace std;

#endif  // MARAS_LIB_LEAKY_H_
