#ifndef MARAS_LIB_ALIASES_H_
#define MARAS_LIB_ALIASES_H_

// Fixture: targeted using-declarations are fine — must stay quiet.
#include <string>

namespace maras {
using std::string;  // a using-declaration, not a using-directive
}  // namespace maras

#endif  // MARAS_LIB_ALIASES_H_
