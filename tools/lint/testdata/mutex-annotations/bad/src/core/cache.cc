// Fixture: three mutex-annotations violations.
//   1. raw std::mutex member outside src/util/
//   2. raw std::shared_mutex member outside src/util/
//   3. a maras::Mutex member that no thread-safety annotation ever names
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace maras {

class RogueCache {
 public:
  void Put(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back(v);
  }

 private:
  std::mutex mu_;
  std::shared_mutex table_mu_;
  maras::Mutex orphan_mu_;
  std::vector<int> entries_;
};

}  // namespace maras
