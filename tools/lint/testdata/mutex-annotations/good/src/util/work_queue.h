#ifndef MARAS_UTIL_WORK_QUEUE_H_
#define MARAS_UTIL_WORK_QUEUE_H_

// Fixture: inside src/util/ a raw std::mutex member is tolerated (the util
// layer bootstraps the wrapper), but it still must be named by at least one
// thread-safety annotation — GUARDED_BY here keeps the rule quiet.
#include <deque>
#include <mutex>

#include "util/thread_annotations.h"

namespace maras {

class WorkQueue {
 public:
  void Push(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    items_.push_back(v);
  }

 private:
  std::mutex mu_;
  std::deque<int> items_ GUARDED_BY(mu_);
};

}  // namespace maras

#endif  // MARAS_UTIL_WORK_QUEUE_H_
