#ifndef MARAS_UTIL_MUTEX_H_
#define MARAS_UTIL_MUTEX_H_

// Fixture: stand-in for the real wrapper header. src/util/mutex.h is the
// one file allowed to hold a raw std::mutex member with no annotation user
// (the wrapper IS where the raw type lives) — the rule must skip it wholesale.
#include <mutex>

namespace maras {

class Mutex {
 public:
  void Lock() { mu_.lock(); }
  void Unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

}  // namespace maras

#endif  // MARAS_UTIL_MUTEX_H_
