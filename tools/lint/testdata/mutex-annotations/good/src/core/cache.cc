// Fixture: the sanctioned shapes stay quiet.
//   - maras::Mutex / SharedMutex members named by GUARDED_BY
//   - an ACQUIRED_BEFORE ordering suffix on the declaration itself
//   - a function-local mutex (guards locals; the rule checks members only)
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace maras {

class CleanCache {
 public:
  void Put(int v) {
    MutexLock lock(&mu_);
    entries_.push_back(v);
  }

  int Snapshot() const {
    ReaderMutexLock lock(&table_mu_);
    return table_size_;
  }

 private:
  Mutex mu_ ACQUIRED_BEFORE(table_mu_);
  mutable SharedMutex table_mu_;
  std::vector<int> entries_ GUARDED_BY(mu_);
  int table_size_ GUARDED_BY(table_mu_) = 0;
};

int SumLocally(const std::vector<int>& values) {
  Mutex local_mu;  // function-local: out of the rule's scope by design
  int total = 0;
  for (int v : values) {
    MutexLock lock(&local_mu);
    total += v;
  }
  return total;
}

}  // namespace maras
