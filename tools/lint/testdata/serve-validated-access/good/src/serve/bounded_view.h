#ifndef MARAS_SERVE_BOUNDED_VIEW_H_
#define MARAS_SERVE_BOUNDED_VIEW_H_

// Fixture: the accessor layer itself is exempt — bounded_view.h is the one
// sanctioned home of memcpy over the mapped image.

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace maras::serve {

class BoundedView {
 public:
  BoundedView() = default;
  BoundedView(const char* data, size_t size) : data_(data), size_(size) {}

  bool U32At(size_t offset, uint32_t* v) const {
    if (offset > size_ || sizeof(*v) > size_ - offset) return false;
    std::memcpy(v, data_ + offset, sizeof(*v));
    return true;
  }

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace maras::serve

#endif  // MARAS_SERVE_BOUNDED_VIEW_H_
