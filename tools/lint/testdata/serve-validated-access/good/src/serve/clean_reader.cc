// Fixture: a serve/ file that reads snapshot bytes the sanctioned way —
// every access goes through BoundedView's checked accessors; no casts, no
// raw copies, no pointer arithmetic.

#include <cstdint>

#include "serve/bounded_view.h"

namespace maras::serve {

bool ReadMagicAndVersion(const BoundedView& view, uint32_t* magic,
                         uint32_t* version) {
  return view.U32At(0, magic) && view.U32At(4, version);
}

}  // namespace maras::serve
