// Fixture: raw byte access in a serve/ file outside the accessor layer.
// All three banned forms must fire: reinterpret_cast, memcpy, and
// data()-pointer arithmetic.

#include <cstdint>
#include <cstring>
#include <string>

namespace maras::serve {

uint32_t RogueHeaderMagic(const std::string& image) {
  // reinterpret_cast straight over untrusted bytes.
  return *reinterpret_cast<const uint32_t*>(image.data());
}

uint64_t RogueChecksum(const std::string& image) {
  uint64_t checksum = 0;
  // Unchecked memcpy out of the hostile image.
  std::memcpy(&checksum, image.data(), sizeof(checksum));
  return checksum;
}

const char* RogueSectionStart(const std::string& image, size_t offset) {
  // Pointer arithmetic on data() instead of a bounds-checked Slice.
  return image.data() + offset;
}

}  // namespace maras::serve
