// Fixture: raw new/delete expressions — both must fire.
namespace maras::core {

int* Make() { return new int(42); }

void Destroy(int* p) { delete p; }

}  // namespace maras::core
