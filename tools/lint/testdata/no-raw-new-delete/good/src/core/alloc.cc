// Fixture: sanctioned allocation idioms — must stay quiet.
#include <string>
#include <vector>

namespace maras::core {

// Leaky singleton: intentionally immortal, avoids destruction-order fiasco.
const std::vector<std::string>& Names() {
  static const auto* names = new std::vector<std::string>{"A", "B"};
  return *names;
}

// Deleted special members are declarations, not delete expressions.
class Pinned {
 public:
  Pinned() = default;
  Pinned(const Pinned&) = delete;
  Pinned& operator=(const Pinned&) = delete;
};

// "new" and "delete" inside comments and strings never fire.
const char* Doc() { return "never call new or delete here"; }

}  // namespace maras::core
