// Fixture: .value() chained straight onto the call — must fire.
#include <string>

#include "util/statusor.h"

namespace maras::core {

maras::StatusOr<std::string> Load(int id);

std::string Use(int id) {
  return Load(id).value();
}

}  // namespace maras::core
