// Fixture: the checked-consume idiom — must stay quiet.
#include <string>
#include <utility>

#include "util/statusor.h"

namespace maras::core {

maras::StatusOr<std::string> Load(int id);

std::string Use(int id) {
  auto loaded = Load(id);
  if (!loaded.ok()) return "";
  // std::move(x).value() after an ok() branch is the sanctioned consume.
  return std::move(loaded).value();
}

}  // namespace maras::core
