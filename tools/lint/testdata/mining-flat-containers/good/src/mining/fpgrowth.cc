// Fixture: hot-path mining file using the flat tables — must stay quiet.
// A comment mentioning std::unordered_map must not fire either.
#include "mining/flat_table.h"

namespace maras::mining {
void Accumulate(FlatItemsetIndex* index) {
  const char* label = "std::unordered_map in a string literal is fine";
  (void)label;
  (void)index;
}
}  // namespace maras::mining
