// Fixture: bitmap kernels on packed words and sorted tid vectors — quiet.
#include <cstdint>
#include <vector>

namespace maras::mining {
uint64_t AndPopcountWords(const std::vector<uint64_t>& a,
                          const std::vector<uint64_t>& b) {
  uint64_t count = 0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    count += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return count;
}
}  // namespace maras::mining
