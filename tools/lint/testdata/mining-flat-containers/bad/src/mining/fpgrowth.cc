// Fixture: node-based hash container in a mining hot path — must fire.
#include <unordered_map>

namespace maras::mining {
void Accumulate() {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
}
}  // namespace maras::mining
