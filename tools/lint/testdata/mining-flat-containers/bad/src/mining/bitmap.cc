// Fixture: the bitmap kernel layer is a hot path too — must fire.
#include <unordered_set>

namespace maras::mining {
void CollectTids() {
  std::unordered_set<unsigned> tids;
  tids.insert(7);
}
}  // namespace maras::mining
