#pragma once

// Fixture: #pragma once instead of the guard convention — must fire.
