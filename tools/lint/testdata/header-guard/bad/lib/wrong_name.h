#ifndef SOME_OTHER_GUARD_H
#define SOME_OTHER_GUARD_H

// Fixture: guard not derived from the path — must fire.

#endif  // SOME_OTHER_GUARD_H
