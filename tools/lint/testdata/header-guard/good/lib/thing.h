#ifndef MARAS_LIB_THING_H_
#define MARAS_LIB_THING_H_

// Fixture: canonical guard derived from the path — must stay quiet.

#endif  // MARAS_LIB_THING_H_
