// Fixture: raw process-control syscalls outside util/subprocess must fire.
#include <cstdio>
#include <unistd.h>

int SpawnWorkerTheWrongWay(const char* path) {
  pid_t pid = fork();  // violation: raw fork
  if (pid == 0) {
    execvp(path, nullptr);  // violation: raw exec
  }
  return system("rm -rf /tmp/scratch");  // violation: raw system
}

FILE* OpenPipeline(const char* cmd) {
  return popen(cmd, "r");  // violation: raw popen
}
