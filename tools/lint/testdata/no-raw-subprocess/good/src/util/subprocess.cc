// Fixture: the sanctioned wrapper file is exempt — raw syscalls here are
// exactly where they belong.
#include <unistd.h>

int SpawnInsideTheWrapper(const char* path) {
  pid_t pid = fork();
  if (pid == 0) {
    execvp(path, nullptr);
  }
  return static_cast<int>(pid);
}
