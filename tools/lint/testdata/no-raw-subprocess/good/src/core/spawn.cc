// Fixture: spawning through the sanctioned wrapper stays quiet, as do
// member calls that merely share a syscall's name, and mentions of
// fork()/execvp()/system() inside comments or string literals.
#include <string>
#include <vector>

#include "core/state_machine.h"  // declares StateMachine::fork / ::system

struct ChildProcess {
  static int Spawn(const std::vector<std::string>& argv);
};

int SpawnWorkerTheRightWay(StateMachine& machine, StateMachine* engine) {
  int child = ChildProcess::Spawn({"worker", "--shard=mine:0:2"});
  int branch = machine.fork(2);
  int state = engine->system(branch);
  std::string note = "workers never call fork() or popen() directly";
  return child + branch + state + (note.empty() ? 0 : 1);
}
