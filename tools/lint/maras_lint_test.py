#!/usr/bin/env python3
"""Self-test for maras-lint.

Every rule is exercised both ways against the fixtures in testdata/: the
`bad` tree must make the rule fire (non-zero exit naming the rule) and the
`good` tree must stay quiet. A linter that cannot fail is worse than no
linter — the bad-fixture half is what proves the lint ctest actually gates.
"""

import os
import subprocess
import sys
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "maras_lint.py")
TESTDATA = os.path.join(HERE, "testdata")

sys.path.insert(0, HERE)
import maras_lint  # noqa: E402


def run_lint(root, rules=None, paths=()):
    cmd = [sys.executable, LINT, "--root", root]
    for r in rules or ():
        cmd += ["--rule", r]
    cmd += list(paths)
    return subprocess.run(cmd, capture_output=True, text=True)


class RuleFixtureTest(unittest.TestCase):
    """For each rule: bad fires, good stays quiet."""

    def assert_fires(self, rule, extra_expected=1):
        root = os.path.join(TESTDATA, rule, "bad")
        proc = run_lint(root, rules=[rule])
        self.assertEqual(proc.returncode, 1,
                         f"{rule}: bad fixture did not fail:\n{proc.stdout}")
        self.assertIn(f"[{rule}]", proc.stdout)
        fired = proc.stdout.count(f"[{rule}]")
        self.assertGreaterEqual(fired, extra_expected, proc.stdout)

    def assert_quiet(self, rule):
        root = os.path.join(TESTDATA, rule, "good")
        proc = run_lint(root, rules=[rule])
        self.assertEqual(
            proc.returncode, 0,
            f"{rule}: good fixture raised violations:\n{proc.stdout}")
        self.assertEqual(proc.stdout, "")

    def test_mining_flat_containers(self):
        # fpgrowth.cc plus the bitmap-kernel fixture: both must fire.
        self.assert_fires("mining-flat-containers", extra_expected=2)
        self.assert_quiet("mining-flat-containers")

    def test_no_raw_new_delete(self):
        self.assert_fires("no-raw-new-delete", extra_expected=2)
        self.assert_quiet("no-raw-new-delete")

    def test_runcontext_polling(self):
        self.assert_fires("runcontext-polling")
        self.assert_quiet("runcontext-polling")

    def test_header_guard(self):
        self.assert_fires("header-guard", extra_expected=2)
        self.assert_quiet("header-guard")

    def test_no_using_namespace_header(self):
        self.assert_fires("no-using-namespace-header")
        self.assert_quiet("no-using-namespace-header")

    def test_statusor_unchecked_deref(self):
        self.assert_fires("statusor-unchecked-deref")
        self.assert_quiet("statusor-unchecked-deref")

    def test_no_raw_subprocess(self):
        # fork, execvp, system, popen — all four must fire in the bad tree;
        # the good tree proves the src/util/subprocess.* exemption, the
        # member-call escape, and comment/string stripping.
        self.assert_fires("no-raw-subprocess", extra_expected=4)
        self.assert_quiet("no-raw-subprocess")

    def test_serve_validated_access(self):
        # reinterpret_cast, memcpy, and data()-arithmetic must all fire in
        # the bad tree; the good tree proves the bounded_view.h exemption
        # and that BoundedView-mediated reads stay quiet.
        self.assert_fires("serve-validated-access", extra_expected=3)
        self.assert_quiet("serve-validated-access")

    def test_mutex_annotations(self):
        # std::mutex member, std::shared_mutex member, and an annotated-type
        # member with no GUARDED_BY user — all three must fire; the good tree
        # proves the member-vs-local scope split, the ACQUIRED_BEFORE
        # declaration suffix, the src/util/mutex.h wrapper exemption, and the
        # util-layer raw-type allowance.
        self.assert_fires("mutex-annotations", extra_expected=3)
        self.assert_quiet("mutex-annotations")

    def test_good_fixtures_clean_under_all_rules(self):
        # Cross-rule quiet check: a good fixture for one rule must not trip
        # another rule by accident.
        for rule in maras_lint.RULES:
            root = os.path.join(TESTDATA, rule, "good")
            proc = run_lint(root)
            self.assertEqual(proc.returncode, 0,
                             f"good fixture of {rule} tripped another "
                             f"rule:\n{proc.stdout}")


class SuppressionTest(unittest.TestCase):
    def test_annotated_violations_are_quiet(self):
        root = os.path.join(TESTDATA, "suppression")
        proc = run_lint(root)
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_suppression_is_rule_scoped(self):
        # The annotation names no-raw-new-delete only; asking for a
        # different rule must not be affected, and stripping the annotation
        # must re-fire. Rebuild the fixture text in a temp tree.
        import tempfile
        src = os.path.join(TESTDATA, "suppression", "src", "core",
                           "suppressed.cc")
        with open(src) as fh:
            text = fh.read()
        with tempfile.TemporaryDirectory() as tmp:
            os.makedirs(os.path.join(tmp, "src", "core"))
            with open(os.path.join(tmp, "src", "core", "raw.cc"), "w") as fh:
                fh.write(text.replace("maras-lint: disable=no-raw-new-delete",
                                      "annotation removed"))
            proc = run_lint(tmp, rules=["no-raw-new-delete"])
            self.assertEqual(proc.returncode, 1, proc.stdout)
            self.assertEqual(proc.stdout.count("[no-raw-new-delete]"), 2,
                             proc.stdout)


class HelperTest(unittest.TestCase):
    def test_strip_preserves_line_structure(self):
        text = 'int a; // new\n/* delete\n spans */ int b = 1; "new";\n'
        stripped = maras_lint.strip_comments_and_strings(text)
        self.assertEqual(stripped.count("\n"), text.count("\n"))
        self.assertNotIn("new", stripped)
        self.assertNotIn("delete", stripped)
        self.assertIn("int b = 1;", stripped)

    def test_strip_handles_raw_strings(self):
        text = 'auto s = R"js({"new": 1})js"; int c;\n'
        stripped = maras_lint.strip_comments_and_strings(text)
        self.assertNotIn("new", stripped)
        self.assertIn("int c;", stripped)

    def test_expected_guard_strips_src_prefix(self):
        self.assertEqual(maras_lint.expected_guard("src/mining/flat_table.h"),
                         "MARAS_MINING_FLAT_TABLE_H_")
        self.assertEqual(maras_lint.expected_guard("bench/bench_json.h"),
                         "MARAS_BENCH_BENCH_JSON_H_")

    def test_unknown_rule_is_usage_error(self):
        proc = run_lint(TESTDATA, rules=["no-such-rule"])
        self.assertEqual(proc.returncode, 2)


class TreeTest(unittest.TestCase):
    def test_repo_tree_is_clean(self):
        # The production tree itself must lint clean; this is the same
        # invocation the lint ctest runs.
        repo_root = os.path.dirname(os.path.dirname(HERE))
        proc = run_lint(repo_root)
        self.assertEqual(proc.returncode, 0,
                         f"repo tree has lint violations:\n{proc.stdout}")

    def test_testdata_is_excluded_from_tree_scan(self):
        # The deliberately-bad fixtures must never fail the tree scan.
        repo_root = os.path.dirname(os.path.dirname(HERE))
        proc = run_lint(repo_root, paths=["tools"])
        self.assertEqual(proc.returncode, 0, proc.stdout)


if __name__ == "__main__":
    unittest.main()
